//! Request handling: routes, response rendering, and the single-flight
//! miss path over the content-addressed artifact cache.
//!
//! The serving contract (DESIGN.md §10) is byte-identity: for a given
//! `(experiment, scale, seed)` the response body is identical across
//! requests, restarts, worker counts, and chaos seeds — the same
//! contract `repro all` honors, extended over HTTP. Hot requests are
//! served straight from the [`ArtifactCache`]; cold ones compute through
//! the engine exactly once no matter how many clients ask concurrently
//! (see [`crate::singleflight`]), then store back with the engine's own
//! bounded-backoff retry discipline. Across *processes* sharing one
//! cache directory, cold keys coordinate through [`crate::crossflight`]
//! lease files — advisory single-flight that degrades to duplicated
//! (never wrong) work.
//!
//! Handlers produce a [`Reply`]: either a whole [`Response`] or a
//! [`Streamed`] head plus a [`BodyStream`] that renders one artifact per
//! chunk, so paper-scale bodies are served in O(chunk) memory. Content
//! negotiation (`Accept-Encoding: gzip`) rides the same path: the
//! stream pushes each chunk through [`gzip::StreamEncoder`], whole
//! bodies go through [`gzip::encode`], and the ETag is a per-variant
//! validator so a `304` never short-circuits the wrong representation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use analysis::{
    find, run_experiments_opts, Artifact, ArtifactCache, CacheKey, Context, EngineOptions,
    Experiment, Scale,
};
use testbed::{FaultPlan, FaultPolicy};

use crate::crossflight::{self, FlightTable};
use crate::gzip;
use crate::http::{Request, Response};

/// Contexts kept warm, keyed by `(scale, seed)`. A quick-scale context
/// is a few hundred milliseconds of campaign collection; keeping a small
/// pool bounds memory while making repeat seeds cheap.
const CONTEXT_POOL_CAP: usize = 8;

/// Configuration for [`ArtifactService`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory of the content-addressed artifact cache.
    pub cache_dir: PathBuf,
    /// Engine worker threads per pipeline run (`None` = one per core).
    pub jobs: Option<usize>,
    /// Chaos plan applied to pipeline runs and cache stores; `None`
    /// injects nothing. Context collection runs fault-free: the daemon
    /// keeps no journal, and the byte-identity contract already pins the
    /// dataset.
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff for transient faults.
    pub policy: FaultPolicy,
    /// How long a cross-process flight lease stays credible before a
    /// follower stops waiting and a new claimant breaks it (the leader
    /// presumably died). Bounds the worst-case added latency a sibling
    /// daemon's crash can impose on a cold request.
    pub crossflight_stale: Duration,
}

impl ServeOptions {
    /// Options serving from `cache_dir` with library defaults.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            cache_dir: cache_dir.into(),
            jobs: None,
            faults: None,
            policy: FaultPolicy::default(),
            crossflight_stale: Duration::from_secs(60),
        }
    }
}

/// Running totals of chaos activity observed while serving, kept in
/// plain atomics so they are observable even when telemetry is off.
#[derive(Debug, Default)]
struct FaultTotals {
    injected: AtomicU64,
    retried: AtomicU64,
}

/// Single-flight key: `(experiment id, scale label, seed)`.
type FlightKey = (String, String, u64);
/// What a flight resolves to: the artifact set, or the leader's error.
type FlightResult = Result<Arc<Vec<Artifact>>, String>;
/// Warm contexts keyed by `(scale label, seed)`; the [`OnceLock`] lets
/// waiters block on the builder without holding the pool lock.
type ContextPool = std::collections::HashMap<(String, u64), Arc<OnceLock<Arc<Context>>>>;

/// What a handler hands the connection loop: a fully materialized
/// response, or a head plus a lazy body to write with chunked framing.
pub enum Reply {
    /// Serialize with `Content-Length` framing.
    Whole(Response),
    /// Serialize the head with `Transfer-Encoding: chunked` and pull
    /// body chunks from the stream one at a time.
    Streamed(Streamed),
}

/// A streamed reply: status + headers, body rendered on demand.
pub struct Streamed {
    /// Status and headers; `head.body` stays empty.
    pub head: Response,
    /// The body, one chunk per artifact (gzip-encoded when negotiated).
    pub body: BodyStream,
}

impl Reply {
    /// The reply's status code.
    pub fn status(&self) -> u16 {
        match self {
            Reply::Whole(resp) => resp.status,
            Reply::Streamed(s) => s.head.status,
        }
    }

    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        match self {
            Reply::Whole(resp) => resp.header(name),
            Reply::Streamed(s) => s.head.header(name),
        }
    }

    /// Collapses the reply into a whole [`Response`], draining a
    /// streamed body into `body`. The bytes are exactly the payload a
    /// client would reassemble from the chunked frames (still
    /// gzip-encoded when the stream negotiated gzip).
    pub fn into_response(self) -> Response {
        match self {
            Reply::Whole(resp) => resp,
            Reply::Streamed(s) => {
                let mut resp = s.head;
                resp.body = s.body.fold(Vec::new(), |mut acc, chunk| {
                    acc.extend_from_slice(&chunk);
                    acc
                });
                resp
            }
        }
    }
}

impl From<Response> for Reply {
    fn from(resp: Response) -> Reply {
        Reply::Whole(resp)
    }
}

/// Lazily rendered artifact body: yields one chunk per selected
/// artifact (the CLI's `render()` + newline, or `to_csv`), optionally
/// pushed through a streaming gzip encoder. Memory stays O(one
/// artifact's rendering) regardless of how many artifacts the response
/// spans.
pub struct BodyStream {
    artifacts: Arc<Vec<Artifact>>,
    selected: Vec<usize>,
    csv: bool,
    next: usize,
    encoder: Option<gzip::StreamEncoder>,
    finished: bool,
}

impl Iterator for BodyStream {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        if let Some(&index) = self.selected.get(self.next) {
            self.next += 1;
            let artifact = &self.artifacts[index];
            let chunk = if self.csv {
                artifact.to_csv().into_bytes()
            } else {
                let mut text = artifact.render();
                text.push('\n');
                text.into_bytes()
            };
            return Some(match &mut self.encoder {
                Some(enc) => enc.push(&chunk),
                None => chunk,
            });
        }
        if self.finished {
            return None;
        }
        self.finished = true;
        // The gzip trailer (final empty block, CRC-32, ISIZE) is its
        // own last chunk; identity streams end with the artifacts.
        self.encoder.take().map(|enc| enc.finish())
    }
}

/// The stateful request handler shared by every connection.
pub struct ArtifactService {
    cache: ArtifactCache,
    jobs: Option<usize>,
    faults: Option<FaultPlan>,
    policy: FaultPolicy,
    flights: crate::singleflight::Group<FlightKey, FlightResult>,
    crossflights: FlightTable,
    contexts: Mutex<ContextPool>,
    fault_totals: FaultTotals,
}

impl ArtifactService {
    /// A service over the cache in `options.cache_dir`.
    pub fn new(options: ServeOptions) -> Self {
        let cache = ArtifactCache::new(options.cache_dir);
        let crossflights = FlightTable::new(cache.dir(), options.crossflight_stale);
        ArtifactService {
            cache,
            jobs: options.jobs,
            faults: options.faults,
            policy: options.policy,
            flights: crate::singleflight::Group::new(),
            crossflights,
            contexts: Mutex::new(std::collections::HashMap::new()),
            fault_totals: FaultTotals::default(),
        }
    }

    /// Chaos faults `(injected, retried)` observed since startup.
    pub fn fault_stats(&self) -> (u64, u64) {
        (
            self.fault_totals.injected.load(Ordering::Relaxed),
            self.fault_totals.retried.load(Ordering::Relaxed),
        )
    }

    /// The cache this service serves from.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Dispatches one request and returns the reply. Telemetry:
    /// `serve.request` (+ per-endpoint), `serve.status.<code>`, and a
    /// `serve.latency.<endpoint>` histogram recorded after the reply
    /// is built (for streamed bodies: after routing and any cold
    /// compute — the chunks themselves render during the write), so
    /// `/metrics` never includes its own in-flight request.
    pub fn handle(&self, req: &Request) -> Reply {
        let started = Instant::now();
        let endpoint = endpoint_label(&req.path);
        telemetry::metrics::counter("serve.request").inc();
        telemetry::metrics::counter(&format!("serve.request.{endpoint}")).inc();
        let mut reply = self.route(req);
        self.negotiate_encoding(req, &mut reply);
        telemetry::metrics::counter(&format!("serve.status.{}", reply.status())).inc();
        telemetry::metrics::histogram(&format!("serve.latency.{endpoint}"))
            .record(started.elapsed().as_secs_f64());
        reply
    }

    /// Applies content negotiation to a routed reply: any `200` with a
    /// body is gzip-encoded when the client negotiated it (streamed
    /// bodies were already encoded chunk-wise by the handler), and every
    /// negotiable response — including `304`, whose validator is
    /// per-variant — carries `Vary: Accept-Encoding`.
    fn negotiate_encoding(&self, req: &Request, reply: &mut Reply) {
        fn add_vary(resp: &mut Response) {
            if resp.header("Vary").is_none() {
                resp.headers
                    .push(("Vary".to_string(), "Accept-Encoding".to_string()));
            }
        }
        match reply {
            Reply::Whole(resp) => {
                if resp.status == 200 && !resp.body.is_empty() {
                    if gzip::negotiates_gzip(req.header("accept-encoding"))
                        && resp.header("Content-Encoding").is_none()
                    {
                        resp.body = gzip::encode(&resp.body);
                        resp.headers
                            .push(("Content-Encoding".to_string(), "gzip".to_string()));
                    }
                    add_vary(resp);
                } else if resp.status == 304 {
                    add_vary(resp);
                }
            }
            Reply::Streamed(s) => add_vary(&mut s.head),
        }
    }

    fn route(&self, req: &Request) -> Reply {
        if req.method != "GET" {
            return Response::text(405, "only GET is supported\n").into();
        }
        match req.path.as_str() {
            "/healthz" => Response::text(200, "ok\n").into(),
            "/metrics" => Response::text(200, render_metrics()).into(),
            "/v1/experiments" => Response::text(200, render_experiments()).into(),
            path => {
                if let Some(id) = path.strip_prefix("/v1/artifacts/") {
                    self.artifacts_endpoint(id, req)
                } else if let Some(id) = path.strip_prefix("/v1/manifest/") {
                    self.manifest_endpoint(id, req).into()
                } else {
                    Response::text(404, format!("no such route: {path}\n")).into()
                }
            }
        }
    }

    /// `GET /v1/artifacts/{id}?seed=&scale=&format=&artifact=`
    ///
    /// HTTP/1.1 clients get the body streamed with chunked framing, one
    /// artifact per chunk; HTTP/1.0 clients get the same bytes whole
    /// under `Content-Length`. With `Accept-Encoding: gzip` the payload
    /// is gzip-encoded (either way) and the ETag switches to the gzip
    /// variant's validator.
    fn artifacts_endpoint(&self, id: &str, req: &Request) -> Reply {
        let (experiment, scale, seed) = match self.resolve(id, req) {
            Ok(triple) => triple,
            Err(resp) => return resp.into(),
        };
        let gzip_negotiated = gzip::negotiates_gzip(req.header("accept-encoding"));
        let etag = etag(experiment, scale, seed, gzip_negotiated);
        if req.header("if-none-match") == Some(etag.as_str()) {
            return Response::empty(304).with_header("ETag", etag).into();
        }
        let artifacts = match self.artifacts_for(experiment, scale, seed) {
            Ok(artifacts) => artifacts,
            Err(why) => return Response::text(500, format!("{id}: {why}\n")).into(),
        };
        let selected: Vec<usize> = match req.query_param("artifact") {
            Some(aid) => match artifacts.iter().position(|a| a.id() == aid) {
                Some(i) => vec![i],
                None => {
                    return Response::text(404, format!("{id} has no artifact `{aid}`\n")).into()
                }
            },
            None => (0..artifacts.len()).collect(),
        };
        let csv = match req.query_param("format").unwrap_or("text") {
            "text" => false,
            "csv" => {
                if selected.len() != 1 {
                    return Response::text(400, "format=csv requires an artifact= selector\n")
                        .into();
                }
                true
            }
            other => return Response::text(400, format!("unknown format `{other}`\n")).into(),
        };
        let mut head = Response::text(200, "").with_header("ETag", etag);
        let encoder = if gzip_negotiated {
            head.headers
                .push(("Content-Encoding".to_string(), "gzip".to_string()));
            Some(gzip::StreamEncoder::new())
        } else {
            None
        };
        let body = BodyStream {
            artifacts,
            selected,
            csv,
            next: 0,
            encoder,
            finished: false,
        };
        if req.accepts_chunked() {
            Reply::Streamed(Streamed { head, body })
        } else {
            head.body = body.fold(Vec::new(), |mut acc, chunk| {
                acc.extend_from_slice(&chunk);
                acc
            });
            Reply::Whole(head)
        }
    }

    /// `GET /v1/manifest/{id}?seed=&scale=`: experiment metadata plus
    /// the artifact inventory, as JSON with a fixed key order.
    fn manifest_endpoint(&self, id: &str, req: &Request) -> Response {
        let (experiment, scale, seed) = match self.resolve(id, req) {
            Ok(triple) => triple,
            Err(resp) => return resp,
        };
        let artifacts = match self.artifacts_for(experiment, scale, seed) {
            Ok(artifacts) => artifacts,
            Err(why) => return Response::text(500, format!("{id}: {why}\n")),
        };
        let key = CacheKey::for_params(experiment, scale, seed);
        let mut entries = String::new();
        for (i, artifact) in artifacts.iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            let kind = match artifact {
                Artifact::Table(_) => "table",
                Artifact::Figure(_) => "figure",
            };
            entries.push_str(&format!(
                "{{\"id\":{},\"kind\":\"{kind}\",\"bytes\":{}}}",
                json_string(artifact.id()),
                artifact.render().len(),
            ));
        }
        let body = format!(
            concat!(
                "{{\"experiment\":{},\"kind\":\"{}\",\"cost\":\"{}\",\"title\":{},",
                "\"code_version\":{},\"scale\":\"{}\",\"seed\":{},\"cacheable\":{},",
                "\"fingerprint\":\"{:016x}\",\"artifacts\":[{}]}}\n"
            ),
            json_string(experiment.id()),
            experiment.kind().label(),
            experiment.cost().label(),
            json_string(experiment.title()),
            experiment.code_version(),
            scale.label(),
            seed,
            experiment.cacheable(),
            key.fingerprint(),
            entries,
        );
        Response::text(200, body).with_content_type("application/json")
    }

    /// Validates id / scale / seed, or produces the error response.
    fn resolve(
        &self,
        id: &str,
        req: &Request,
    ) -> Result<(&'static dyn Experiment, Scale, u64), Response> {
        let Some(experiment) = find(id) else {
            return Err(Response::text(
                404,
                format!("unknown experiment id `{id}` (see /v1/experiments)\n"),
            ));
        };
        let scale_param = req.query_param("scale").unwrap_or("quick");
        let Some(scale) = Scale::parse(scale_param) else {
            return Err(Response::text(
                400,
                format!("unknown scale `{scale_param}` (quick|paper)\n"),
            ));
        };
        let seed = match req.query_param("seed").unwrap_or("42").parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => return Err(Response::text(400, "seed must be an unsigned integer\n")),
        };
        Ok((experiment, scale, seed))
    }

    /// Returns the experiment's artifacts, from the cache when hot,
    /// computing through the engine when cold. Concurrent callers for
    /// the same `(id, scale, seed)` share one computation.
    pub fn artifacts_for(
        &self,
        experiment: &'static dyn Experiment,
        scale: Scale,
        seed: u64,
    ) -> Result<Arc<Vec<Artifact>>, String> {
        let flight_key = (experiment.id().to_string(), scale.label().to_string(), seed);
        let (outcome, role) = self
            .flights
            .run(&flight_key, || self.compute(experiment, scale, seed));
        let counter = match role {
            crate::singleflight::Role::Led => "serve.singleflight.lead",
            crate::singleflight::Role::Waited => "serve.singleflight.wait",
        };
        telemetry::metrics::counter(counter).inc();
        outcome
    }

    /// The in-process flight leader's path: cache lookup, then — on a
    /// true miss — cross-process coordination. Claiming the flight lease
    /// means this process computes (`serve.crossflight.lead`); losing it
    /// means a sibling daemon already is, so wait for its entry to land
    /// (`serve.crossflight.follow`) and only compute ourselves if the
    /// sibling vanishes without one (`serve.crossflight.degraded`).
    fn compute(
        &self,
        experiment: &'static dyn Experiment,
        scale: Scale,
        seed: u64,
    ) -> Result<Arc<Vec<Artifact>>, String> {
        let key = CacheKey::for_params(experiment, scale, seed);
        if experiment.cacheable() {
            if let Some(artifacts) = self.cache.lookup(&key) {
                return Ok(Arc::new(artifacts));
            }
            match self.crossflights.claim(key.fingerprint()) {
                crossflight::Claim::Lead(_lease) => {
                    telemetry::metrics::counter("serve.crossflight.lead").inc();
                    // `_lease` drops (and releases the claim file) after
                    // the compute + store-back below completes.
                    return self.compute_locally(experiment, scale, seed, &key);
                }
                crossflight::Claim::Follow => {
                    if let Some(artifacts) = self.await_sibling(&key) {
                        telemetry::metrics::counter("serve.crossflight.follow").inc();
                        return Ok(Arc::new(artifacts));
                    }
                    // The sibling released (or went stale) without an
                    // entry: degrade to uncoordinated duplicate work.
                    telemetry::metrics::counter("serve.crossflight.degraded").inc();
                }
            }
        }
        self.compute_locally(experiment, scale, seed, &key)
    }

    /// Waits for a sibling process's flight to land its entry in the
    /// shared cache. Polls for the entry *file* rather than calling
    /// `lookup` each round, so a follower's wait cannot inflate the
    /// `cache.miss` counter; the one real lookup happens when the file
    /// appears (or the wait ends). `None` means the sibling failed —
    /// the caller computes locally.
    fn await_sibling(&self, key: &CacheKey) -> Option<Vec<Artifact>> {
        let entry = self.cache.dir().join(key.file_name());
        let deadline = Instant::now() + self.crossflights.stale_after();
        loop {
            if entry.exists() {
                return self.cache.lookup(key);
            }
            if !self.crossflights.held(key.fingerprint()) || Instant::now() >= deadline {
                // One last look: the leader may have stored and released
                // between our poll and the held() check.
                return self.cache.lookup(key);
            }
            std::thread::sleep(crossflight::POLL_INTERVAL);
        }
    }

    /// A full pipeline run on a pooled context, then a retried
    /// store-back. The engine is invoked with `cache: None` — the
    /// service already did the lookup, and one cold request must count
    /// exactly one `cache.miss`.
    fn compute_locally(
        &self,
        experiment: &'static dyn Experiment,
        scale: Scale,
        seed: u64,
        key: &CacheKey,
    ) -> Result<Arc<Vec<Artifact>>, String> {
        let ctx = self.context(scale, seed);
        let options = EngineOptions {
            jobs: self.jobs,
            cache: None,
            faults: self.faults,
            policy: self.policy,
        };
        let (runs, fault_stats) = run_experiments_opts(&ctx, &[experiment], &options, &|_| {});
        self.fault_totals
            .injected
            .fetch_add(fault_stats.injected, Ordering::Relaxed);
        self.fault_totals
            .retried
            .fetch_add(fault_stats.retried, Ordering::Relaxed);
        telemetry::metrics::counter("serve.faults.injected").add(fault_stats.injected);
        telemetry::metrics::counter("serve.faults.retried").add(fault_stats.retried);
        let run = runs
            .into_iter()
            .next()
            .ok_or_else(|| "engine returned no report".to_string())?;
        let artifacts = run.outcome.map_err(|e| e.message().to_string())?;
        if experiment.cacheable() {
            self.store_retrying(experiment, key, &artifacts);
        }
        Ok(Arc::new(artifacts))
    }

    /// Best-effort store-back, mirroring the engine's discipline: chaos
    /// can inject I/O faults at `cache.store.<id>`, transient failures
    /// retry under the policy's bounded backoff, and a failure past the
    /// budget is logged, never served as an error — the artifacts were
    /// computed fine.
    fn store_retrying(&self, experiment: &dyn Experiment, key: &CacheKey, artifacts: &[Artifact]) {
        let site = format!("cache.store.{}", experiment.id());
        let mut attempt = 0;
        loop {
            let result = if self.faults.is_some_and(|f| f.io_error(&site, attempt)) {
                self.fault_totals.injected.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("serve.faults.injected").inc();
                Err(std::io::Error::other("injected I/O fault (chaos)"))
            } else {
                self.cache.store(key, artifacts)
            };
            match result {
                Ok(()) => return,
                Err(_) if attempt < self.policy.max_retries => {
                    self.fault_totals.retried.fetch_add(1, Ordering::Relaxed);
                    telemetry::metrics::counter("serve.faults.retried").inc();
                    std::thread::sleep(self.policy.backoff_for(attempt));
                    attempt += 1;
                }
                Err(err) => {
                    eprintln!("serve: cannot store {}: {err}", experiment.id());
                    return;
                }
            }
        }
    }

    /// A context from the pool, collecting the campaign on first use.
    /// `OnceLock::get_or_init` gives context builds their own
    /// single-flight: concurrent cold requests for different experiments
    /// at the same `(scale, seed)` collect one campaign, not two.
    fn context(&self, scale: Scale, seed: u64) -> Arc<Context> {
        let cell = {
            let mut pool = self
                .contexts
                .lock()
                .expect("context pool lock not poisoned");
            let pool_key = (scale.label().to_string(), seed);
            if pool.len() >= CONTEXT_POOL_CAP && !pool.contains_key(&pool_key) {
                // Evict an arbitrary entry; in-flight users hold Arcs and
                // are unaffected, and contexts are pure functions of their
                // key, so eviction only costs a rebuild.
                if let Some(evict) = pool.keys().next().cloned() {
                    pool.remove(&evict);
                }
            }
            Arc::clone(pool.entry(pool_key).or_default())
        };
        Arc::clone(cell.get_or_init(|| Arc::new(Context::with_jobs(scale, seed, self.jobs))))
    }
}

/// The strong validator for an artifact response: the cache fingerprint
/// of `(experiment, scale, seed)`, derivable without collecting a
/// campaign. Each encoding is its own representation with its own
/// validator (`"<fp>"` vs `"<fp>-gzip"`), so `If-None-Match` can only
/// revalidate the representation the negotiation would actually serve.
fn etag(experiment: &dyn Experiment, scale: Scale, seed: u64, gzip: bool) -> String {
    let fp = CacheKey::for_params(experiment, scale, seed).fingerprint();
    if gzip {
        format!("\"{fp:016x}-gzip\"")
    } else {
        format!("\"{fp:016x}\"")
    }
}

/// Which latency/request bucket a path belongs to.
fn endpoint_label(path: &str) -> &'static str {
    if path == "/healthz" {
        "healthz"
    } else if path == "/metrics" {
        "metrics"
    } else if path == "/v1/experiments" {
        "experiments"
    } else if path.starts_with("/v1/artifacts/") {
        "artifacts"
    } else if path.starts_with("/v1/manifest/") {
        "manifest"
    } else {
        "other"
    }
}

/// The registry listing, byte-identical to `repro list`.
pub fn render_experiments() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4}  {:<6}  {:<6}  title\n",
        "id", "kind", "cost"
    ));
    for e in analysis::all() {
        out.push_str(&format!(
            "{:<4}  {:<6}  {:<6}  {}\n",
            e.id(),
            e.kind().label(),
            e.cost().label(),
            e.title(),
        ));
    }
    out
}

/// The live metrics snapshot as a deterministic text format: one line
/// per metric, sections in snapshot order (alphabetical by name — the
/// [`telemetry::metrics::MetricsSnapshot`] ordering contract).
pub fn render_metrics() -> String {
    fn opt(v: Option<f64>) -> String {
        v.map_or_else(|| "-".to_string(), |v| format!("{v}"))
    }
    let snapshot = telemetry::metrics::snapshot();
    let mut out = String::from("# serve metrics v1\n");
    for c in &snapshot.counters {
        out.push_str(&format!("counter {} {}\n", c.name, c.value));
    }
    for g in &snapshot.gauges {
        out.push_str(&format!("gauge {} {}\n", g.name, g.value));
    }
    for h in &snapshot.histograms {
        out.push_str(&format!(
            "histogram {} count {} rejected {} total {} min {} max {} p50 {} p90 {} p95 {} p99 {}\n",
            h.name,
            h.count,
            h.rejected,
            h.total,
            opt(h.min),
            opt(h.max),
            opt(h.p50),
            opt(h.p90),
            opt(h.p95),
            opt(h.p99),
        ));
    }
    out
}

/// Serializes `s` as a JSON string literal (the manifest endpoint's
/// values are ASCII, but escaping is still done properly).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn get(path: &str) -> Request {
        Request::read_from(&mut BufReader::new(
            format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes(),
        ))
        .unwrap()
        .unwrap()
    }

    fn get_1_0(path: &str) -> Request {
        Request::read_from(&mut BufReader::new(
            format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes(),
        ))
        .unwrap()
        .unwrap()
    }

    fn with_header(mut req: Request, name: &str, value: &str) -> Request {
        req.headers.push((name.to_string(), value.to_string()));
        req
    }

    fn temp_service() -> (ArtifactService, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "serve-unit-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ));
        let service = ArtifactService::new(ServeOptions {
            jobs: Some(2),
            ..ServeOptions::new(&dir)
        });
        (service, dir)
    }

    #[test]
    fn experiments_listing_matches_the_registry() {
        let listing = render_experiments();
        let mut lines = listing.lines();
        assert_eq!(lines.next(), Some("id    kind    cost    title"));
        assert_eq!(listing.lines().count(), analysis::all().len() + 1);
        assert!(listing.lines().any(|l| l.starts_with("T1")));
        assert!(listing.lines().any(|l| l.starts_with("F6")));
    }

    #[test]
    fn routing_rejects_what_it_should() {
        let (service, dir) = temp_service();
        assert_eq!(service.handle(&get("/nope")).status(), 404);
        assert_eq!(
            service.handle(&get("/v1/artifacts/ZZ?seed=1")).status(),
            404,
            "unknown experiment id"
        );
        assert_eq!(
            service
                .handle(&get("/v1/artifacts/T1?scale=galactic"))
                .status(),
            400
        );
        assert_eq!(
            service
                .handle(&get("/v1/artifacts/T1?seed=minus-one"))
                .status(),
            400
        );
        assert_eq!(
            service
                .handle(&get("/v1/artifacts/T1?format=yaml"))
                .status(),
            400
        );
        let mut post = get("/healthz");
        post.method = "POST".to_string();
        assert_eq!(service.handle(&post).status(), 405);
        assert_eq!(service.handle(&get("/healthz")).status(), 200);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn etag_round_trip_yields_304_without_recomputing() {
        let (service, dir) = temp_service();
        let first = service.handle(&get("/v1/artifacts/T1?seed=7&scale=quick"));
        assert_eq!(first.status(), 200);
        let etag = first
            .header("ETag")
            .expect("artifact responses carry an ETag")
            .to_string();
        let conditional = with_header(
            get("/v1/artifacts/T1?seed=7&scale=quick"),
            "if-none-match",
            &etag,
        );
        let second = service.handle(&conditional);
        assert_eq!(second.status(), 304);
        assert_eq!(
            second.header("Vary"),
            Some("Accept-Encoding"),
            "variant-selecting 304s must carry Vary"
        );
        assert!(second.into_response().body.is_empty());
        // The validator is the cache fingerprint, so it must differ
        // across seeds and scales.
        let other = service.handle(&get("/v1/artifacts/T1?seed=8&scale=quick"));
        let other_etag = other.header("ETag").map(str::to_string);
        assert_ne!(Some(etag), other_etag);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn streamed_and_whole_bodies_are_byte_identical() {
        let (service, dir) = temp_service();
        let streamed = service.handle(&get("/v1/artifacts/T1?seed=7&scale=quick"));
        assert!(
            matches!(streamed, Reply::Streamed(_)),
            "HTTP/1.1 artifact responses stream"
        );
        let whole = service.handle(&get_1_0("/v1/artifacts/T1?seed=7&scale=quick"));
        assert!(
            matches!(whole, Reply::Whole(_)),
            "HTTP/1.0 gets Content-Length framing"
        );
        let streamed_body = streamed.into_response().body;
        let whole_body = whole.into_response().body;
        assert!(!streamed_body.is_empty());
        assert_eq!(streamed_body, whole_body);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn gzip_negotiation_encodes_and_varies_the_validator() {
        let (service, dir) = temp_service();
        let plain = service.handle(&get("/v1/artifacts/T1?seed=7&scale=quick"));
        let plain_etag = plain.header("ETag").unwrap().to_string();
        let gz_req = || {
            with_header(
                get("/v1/artifacts/T1?seed=7&scale=quick"),
                "accept-encoding",
                "gzip",
            )
        };
        let gz = service.handle(&gz_req());
        assert_eq!(gz.status(), 200);
        assert_eq!(gz.header("Content-Encoding"), Some("gzip"));
        assert_eq!(gz.header("Vary"), Some("Accept-Encoding"));
        let gz_etag = gz.header("ETag").unwrap().to_string();
        assert_ne!(
            plain_etag, gz_etag,
            "each representation has its own validator"
        );
        assert!(gz_etag.contains("-gzip"));
        // The identity validator cannot revalidate the gzip variant...
        let stale = with_header(gz_req(), "if-none-match", &plain_etag);
        assert_eq!(service.handle(&stale).status(), 200);
        // ...but the variant's own validator can.
        let fresh = with_header(gz_req(), "if-none-match", &gz_etag);
        assert_eq!(service.handle(&fresh).status(), 304);
        // And the encoded body decodes to exactly the identity bytes.
        let plain_body = plain.into_response().body;
        let gz_body = gz.into_response().body;
        assert!(gz_body.len() < plain_body.len(), "gzip should shrink text");
        assert_eq!(gzip::decode(&gz_body).unwrap(), plain_body);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn non_artifact_endpoints_gzip_whole_bodies_on_request() {
        let (service, dir) = temp_service();
        let plain = service.handle(&get("/v1/experiments")).into_response();
        let gz = service
            .handle(&with_header(
                get("/v1/experiments"),
                "accept-encoding",
                "gzip",
            ))
            .into_response();
        assert_eq!(gz.header("Content-Encoding"), Some("gzip"));
        assert_eq!(gzip::decode(&gz.body).unwrap(), plain.body);
        // Refused encodings stay identity.
        let refused = service
            .handle(&with_header(
                get("/v1/experiments"),
                "accept-encoding",
                "gzip;q=0",
            ))
            .into_response();
        assert_eq!(refused.header("Content-Encoding"), None);
        assert_eq!(refused.body, plain.body);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn manifest_lists_artifacts_with_fixed_key_order() {
        let (service, dir) = temp_service();
        let resp = service
            .handle(&get("/v1/manifest/T1?seed=7&scale=quick"))
            .into_response();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.starts_with("{\"experiment\":\"T1\",\"kind\":\"table\","));
        assert!(body.contains("\"scale\":\"quick\",\"seed\":7,"));
        assert!(body.contains("\"fingerprint\":\""));
        assert!(body.contains("\"artifacts\":[{\"id\":"));
        assert!(body.ends_with("]}\n"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_format_selects_one_artifact() {
        let (service, dir) = temp_service();
        let manifest = service
            .handle(&get("/v1/manifest/T1?seed=7"))
            .into_response();
        let body = String::from_utf8(manifest.body).unwrap();
        let aid = body
            .split("\"artifacts\":[{\"id\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("manifest names at least one artifact")
            .to_string();
        let csv = service.handle(&get(&format!(
            "/v1/artifacts/T1?seed=7&format=csv&artifact={aid}"
        )));
        assert_eq!(csv.status(), 200);
        assert!(!csv.into_response().body.is_empty());
        let missing = service.handle(&get("/v1/artifacts/T1?seed=7&artifact=nope"));
        assert_eq!(missing.status(), 404);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }
}
