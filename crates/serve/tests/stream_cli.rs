//! `--stream` through the `repro` binary: the streaming data path must
//! be invisible in every artifact byte while announcing itself (and its
//! memory bound) on stderr. DESIGN.md §11 is the contract under test.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    // Never append to the developer's sentinel baseline, and never let
    // the cache paper over a data-path difference.
    cmd.args(["--no-sentinel", "--no-cache"]);
    cmd
}

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-stream-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sorted (name, bytes) of every CSV artifact in an output directory.
fn csv_artifacts(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("output dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read(&p).expect("artifact readable"))
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "run produced no CSV artifacts");
    files
}

#[test]
fn stream_artifacts_are_byte_identical_across_modes_and_jobs() {
    let materialized = out_dir("mat");
    let base = repro()
        .args(["T1", "F3", "--seed", "5", "--jobs", "1"])
        .args(["--out", materialized.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(base.status.success(), "materialized run succeeds");

    for jobs in ["1", "4"] {
        let streamed = out_dir(&format!("str{jobs}"));
        let out = repro()
            .args(["T1", "F3", "--seed", "5", "--jobs", jobs, "--stream"])
            .args(["--out", streamed.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "streaming run succeeds");
        assert_eq!(
            out.stdout, base.stdout,
            "--jobs {jobs}: streaming stdout must match materialized"
        );
        assert_eq!(
            csv_artifacts(&streamed),
            csv_artifacts(&materialized),
            "--jobs {jobs}: streaming CSVs must match materialized byte for byte"
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("streaming: experiments replay the journal"),
            "streaming announces itself: {stderr}"
        );
        assert!(
            stderr.contains("peak live samples"),
            "the memory-bound summary is reported: {stderr}"
        );
        let _ = std::fs::remove_dir_all(&streamed);
    }
    let _ = std::fs::remove_dir_all(&materialized);
}

#[test]
fn repro_stream_env_toggles_streaming() {
    let on = repro()
        .args(["T1", "--seed", "3"])
        .env("REPRO_STREAM", "1")
        .output()
        .expect("binary runs");
    assert!(on.status.success());
    let stderr = String::from_utf8(on.stderr).unwrap();
    assert!(
        stderr.contains("streaming: experiments replay the journal"),
        "REPRO_STREAM=1 enables streaming: {stderr}"
    );

    for off_value in ["0", "false", ""] {
        let off = repro()
            .args(["T1", "--seed", "3"])
            .env("REPRO_STREAM", off_value)
            .output()
            .expect("binary runs");
        assert!(off.status.success());
        let stderr = String::from_utf8(off.stderr).unwrap();
        assert!(
            !stderr.contains("streaming:"),
            "REPRO_STREAM={off_value:?} must stay materialized: {stderr}"
        );
    }
}

#[test]
fn stream_with_resume_reuses_the_journal_on_disk() {
    let journal = out_dir("journal");
    let artifacts = out_dir("resume-out");
    let run = |label: &str| {
        let out = repro()
            .args(["T1", "--seed", "11", "--stream"])
            .args(["--resume", journal.to_str().unwrap()])
            .args(["--out", artifacts.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{label} run succeeds");
        String::from_utf8(out.stderr).unwrap()
    };
    run("cold");
    let shards = std::fs::read_dir(&journal)
        .expect("journal dir persists under --resume")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "shard"))
        .count();
    assert!(shards > 0, "the journal holds the collected shards");

    // Second run: the journal is complete, so collection replays it
    // instead of re-measuring, and streaming reads the same shards.
    let stderr = run("warm");
    assert!(
        stderr.contains("peak live samples"),
        "warm run still streams: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&journal);
    let _ = std::fs::remove_dir_all(&artifacts);
}
