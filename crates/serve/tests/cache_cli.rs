//! Integration tests for the `repro` binary's artifact cache: the
//! `--cache-dir` / `--no-cache` flags, the `cache stats|clear`
//! subcommands, and the headline contract — `repro all` twice into the
//! same cache directory reports a hit for every experiment, executes
//! zero pipeline bodies, and writes a byte-identical artifact
//! directory.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    // Successful runs auto-record into the sentinel history; tests must
    // not append to the developer's real baseline.
    cmd.arg("--no-sentinel");
    cmd
}

fn temp_root(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cache-cli-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drops the lines of `manifest.json` that legitimately differ between a
/// cold and a hot run: wall-clock timings, the start timestamp, and the
/// cache section's own counters. Everything else must match.
fn normalized_manifest(raw: &str) -> String {
    raw.lines()
        .filter(|line| {
            ![
                "secs",
                "\"enabled\"",
                "\"hits\"",
                "\"invalidated\"",
                "\"misses\"",
                "\"stored\"",
            ]
            .iter()
            .any(|tag| line.contains(tag))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn read_dir_sorted(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    names
}

#[test]
fn repro_all_twice_hits_every_experiment_and_replays_the_bytes() {
    let root = temp_root("all-twice");
    let cache = root.join("cache");
    let run = |out: &Path| {
        let output = repro()
            .args(["all", "--jobs", "4", "--seed", "5"])
            .args(["--out", out.to_str().unwrap()])
            .args(["--cache-dir", cache.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
        (
            String::from_utf8(output.stdout).unwrap(),
            String::from_utf8(output.stderr).unwrap(),
        )
    };
    let (stdout_cold, stderr_cold) = run(&root.join("out1"));
    assert!(
        stderr_cold.contains("cache: 0 hits, 0 invalidated, 24 misses, 24 stored"),
        "cold summary wrong:\n{stderr_cold}"
    );
    let (stdout_hot, stderr_hot) = run(&root.join("out2"));
    assert!(
        stderr_hot.contains("cache: 24 hits, 0 invalidated, 0 misses, 0 stored"),
        "hot summary wrong:\n{stderr_hot}"
    );
    let progress = stderr_hot
        .lines()
        .filter(|l| l.starts_with('['))
        .collect::<Vec<_>>();
    assert_eq!(progress.len(), 24);
    assert!(
        progress.iter().all(|l| l.contains("(cached)")),
        "every hot progress line is marked cached:\n{stderr_hot}"
    );
    assert_eq!(stdout_cold, stdout_hot, "hot stdout replays cold stdout");

    // Same file set, byte-identical contents; the manifest may differ
    // only in timings and cache counters.
    let (out1, out2) = (root.join("out1"), root.join("out2"));
    let names = read_dir_sorted(&out1);
    assert_eq!(names, read_dir_sorted(&out2));
    assert!(names.contains(&"manifest.json".to_string()));
    assert!(names.len() > 24, "every experiment landed artifacts");
    for name in &names {
        let a = std::fs::read(out1.join(name)).unwrap();
        let b = std::fs::read(out2.join(name)).unwrap();
        if name == "manifest.json" {
            assert_eq!(
                normalized_manifest(&String::from_utf8(a).unwrap()),
                normalized_manifest(&String::from_utf8(b).unwrap()),
                "manifests differ beyond timings and cache counters"
            );
        } else {
            assert_eq!(a, b, "{name} differs between cold and hot run");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn hot_runs_show_cache_hits_and_no_pipeline_metrics() {
    let root = temp_root("metrics");
    let cache = root.join("cache");
    let run = || {
        let output = repro()
            .args(["T1", "T2", "--seed", "9", "--metrics"])
            .args(["--cache-dir", cache.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(output.status.success());
        String::from_utf8(output.stdout).unwrap()
    };
    let cold = run();
    assert!(cold.contains("cache.miss"), "cold metrics:\n{cold}");
    assert!(cold.contains("cache.stored"), "cold metrics:\n{cold}");
    assert!(
        cold.contains("experiment.secs"),
        "cold run executes pipelines:\n{cold}"
    );
    let hot = run();
    let hit_row = hot
        .lines()
        .find(|l| l.trim_start().starts_with("cache.hit"))
        .unwrap_or_else(|| panic!("no cache.hit row:\n{hot}"));
    assert!(hit_row.contains('2'), "both experiments hit: {hit_row}");
    assert!(
        !hot.contains("experiment.secs"),
        "a hot run must execute zero pipeline bodies, so the \
         per-experiment timing histogram never exists:\n{hot}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn no_cache_bypasses_reads_and_writes() {
    let root = temp_root("no-cache");
    let cache = root.join("cache");
    for _ in 0..2 {
        let output = repro()
            .args(["T1", "--seed", "3", "--no-cache"])
            .args(["--cache-dir", cache.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(output.status.success());
        let stderr = String::from_utf8(output.stderr).unwrap();
        assert!(stderr.contains("cache: disabled"), "{stderr}");
        assert!(!stderr.contains("(cached)"), "{stderr}");
    }
    assert!(
        !cache.exists(),
        "--no-cache must never create the directory"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stats_and_clear_subcommands_manage_the_directory() {
    let root = temp_root("stats-clear");
    let cache = root.join("cache");
    let cache_arg = ["--cache-dir", cache.to_str().unwrap()];
    let stats = || {
        let output = repro()
            .arg("cache")
            .arg("stats")
            .args(cache_arg)
            .output()
            .expect("binary runs");
        assert!(output.status.success());
        String::from_utf8(output.stdout).unwrap()
    };
    assert!(stats().contains("0 entries"), "a missing dir is empty");
    let output = repro()
        .args(["T1", "T2", "--seed", "4"])
        .args(cache_arg)
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    assert!(stats().contains("2 entries"));
    let output = repro()
        .args(["cache", "clear"])
        .args(cache_arg)
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout)
        .unwrap()
        .contains("removed 2 entries"));
    assert!(stats().contains("0 entries"));

    // Bad subcommands fail with usage, not a run.
    for args in [vec!["cache"], vec!["cache", "frobnicate"]] {
        let output = repro().args(&args).output().expect("binary runs");
        assert!(!output.status.success(), "{args:?} should fail");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_failures_are_never_cached_or_masked_by_the_cache() {
    let root = temp_root("fail");
    let cache = root.join("cache");
    let cache_arg = ["--cache-dir", cache.to_str().unwrap()];
    let run_failing = || {
        let output = repro()
            .args(["T1", "--seed", "6"])
            .args(cache_arg)
            .env("REPRO_FAIL", "T1")
            .output()
            .expect("binary runs");
        assert!(!output.status.success(), "injected failure must fail");
        String::from_utf8(output.stderr).unwrap()
    };
    let stderr = run_failing();
    assert!(
        stderr.contains("cache: 0 hits, 0 invalidated, 0 misses, 0 stored"),
        "a failure-injected experiment never touches the cache:\n{stderr}"
    );
    // Populate the cache with a genuine success...
    let output = repro()
        .args(["T1", "--seed", "6"])
        .args(cache_arg)
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("1 stored"), "{stderr}");
    // ...and the cached success must still not mask the injected failure.
    let stderr = run_failing();
    assert!(stderr.contains("experiment T1 failed"), "{stderr}");
    assert!(!stderr.contains("(cached)"), "{stderr}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn help_documents_the_cache_surface() {
    let out = repro().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "--no-cache",
        "--cache-dir DIR",
        "cache stats",
        "cache clear",
    ] {
        assert!(stdout.contains(needle), "help lacks {needle}:\n{stdout}");
    }
}
