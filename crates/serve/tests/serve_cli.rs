//! Integration tests for `repro serve` through the real binary: spawn
//! the daemon on an ephemeral port, drive a fixed request session over
//! TCP, and pin the responses against golden fixtures — the registry
//! listing byte-for-byte, the `/metrics` text format with numeric
//! values normalized. Then SIGKILL the daemon and prove a restart over
//! the same cache directory serves identical bytes, from the cache.
//!
//! Regenerate fixtures after an intentional format change with:
//! `REGEN_FIXTURES=1 cargo test -p serve --test serve_cli`

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn temp_root(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-serve-cli-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the named fixture; with `REGEN_FIXTURES=1`
/// rewrites the fixture instead (for intentional format changes).
fn assert_matches_fixture(actual: &str, name: &str) {
    let path = fixture_path(name);
    if std::env::var("REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "response does not match fixture {name}; if the format change is \
         intentional, regenerate with REGEN_FIXTURES=1"
    );
}

/// A running daemon child plus the address it printed.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns `repro serve` on an ephemeral port and parses the
    /// announced address from its stdout.
    fn spawn(cache_dir: &Path) -> Daemon {
        Self::spawn_with(cache_dir, &[])
    }

    /// Like [`Daemon::spawn`], with extra CLI flags appended.
    fn spawn_with(cache_dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2"])
            .args(["--cache-dir", cache_dir.to_str().unwrap()])
            .args(extra)
            .env_remove("REPRO_CHAOS")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon announces its address before exiting")
                .expect("stdout readable");
            if let Some(rest) = line.strip_prefix("serving on http://") {
                break rest.parse().expect("announced address parses");
            }
        };
        Daemon { child, addr }
    }

    fn get(&self, path: &str, extra_header: Option<&str>) -> (u16, Vec<String>, String) {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        let extra = extra_header.map_or(String::new(), |h| format!("{h}\r\n"));
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\n{extra}Connection: close\r\n\r\n").as_bytes(),
            )
            .expect("send");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("receive");
        let raw = String::from_utf8(raw).expect("utf-8 response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
        let mut lines = head.lines();
        let status: u16 = lines
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let headers: Vec<String> = lines.map(str::to_string).collect();
        // HTTP/1.1 artifact responses stream with chunked framing;
        // decode back to the payload so assertions see the real bytes.
        let body = if header(&headers, "Transfer-Encoding").as_deref() == Some("chunked") {
            let payload =
                serve::http::decode_chunked(body.as_bytes()).expect("valid chunked framing");
            String::from_utf8(payload).expect("utf-8 payload")
        } else {
            body.to_string()
        };
        (status, headers, body)
    }

    fn kill(mut self) {
        let _ = self.child.kill(); // SIGKILL: no notice, no cleanup
        let _ = self.child.wait();
    }
}

fn header(headers: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}: ");
    headers
        .iter()
        .find_map(|l| l.strip_prefix(&prefix).map(str::to_string))
}

/// Replaces every numeric token with `N` so the fixture pins the metric
/// *names and shape*, not wall-clock-dependent values.
fn normalize_metrics(metrics: &str) -> String {
    metrics
        .lines()
        .map(|line| {
            line.split(' ')
                .map(|tok| if tok.parse::<f64>().is_ok() { "N" } else { tok })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn daemon_serves_the_golden_session_and_survives_sigkill() {
    let root = temp_root("golden");
    let cache_dir = root.join("cache");
    let daemon = Daemon::spawn(&cache_dir);

    // A fixed request session; its telemetry is what the /metrics
    // fixture pins, so order matters.
    let (status, _, body) = daemon.get("/healthz", None);
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, _, listing) = daemon.get("/v1/experiments", None);
    assert_eq!(status, 200);
    assert_matches_fixture(&listing, "golden_experiments.txt");

    let (status, headers, cold_body) = daemon.get("/v1/artifacts/T1?seed=7&scale=quick", None);
    assert_eq!(status, 200);
    assert!(!cold_body.is_empty());
    let etag = header(&headers, "ETag").expect("artifact responses carry an ETag");
    assert!(etag.starts_with('"') && etag.ends_with('"'), "{etag}");

    let (status, headers, not_modified) = daemon.get(
        "/v1/artifacts/T1?seed=7&scale=quick",
        Some(&format!("If-None-Match: {etag}")),
    );
    assert_eq!(status, 304);
    assert!(not_modified.is_empty());
    assert_eq!(header(&headers, "ETag").as_deref(), Some(etag.as_str()));

    let (status, _, metrics) = daemon.get("/metrics", None);
    assert_eq!(status, 200);
    assert_matches_fixture(&normalize_metrics(&metrics), "golden_metrics.txt");
    // Beyond the shape, the session's exact counts are deterministic.
    assert!(metrics.contains("counter cache.miss 1\n"), "{metrics}");
    assert!(metrics.contains("counter cache.stored 1\n"), "{metrics}");
    assert!(metrics.contains("counter serve.singleflight.lead 1\n"));
    assert!(metrics.contains("counter serve.status.304 1\n"));

    // SIGKILL mid-flight leaves only the cache directory behind; a new
    // daemon over it must serve the very same bytes, without computing.
    daemon.kill();
    let revived = Daemon::spawn(&cache_dir);
    let (status, headers, hot_body) = revived.get("/v1/artifacts/T1?seed=7&scale=quick", None);
    assert_eq!(status, 200);
    assert_eq!(hot_body, cold_body, "restart must not change a single byte");
    assert_eq!(header(&headers, "ETag").as_deref(), Some(etag.as_str()));
    let (_, _, metrics) = revived.get("/metrics", None);
    assert!(
        metrics.contains("counter cache.hit 1\n"),
        "the revived daemon served from the cache:\n{metrics}"
    );
    assert!(!metrics.contains("counter cache.miss"), "{metrics}");
    revived.kill();

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn workers_flag_sizes_the_pool_and_queue_cap_is_reported() {
    let root = temp_root("workers");
    let daemon = Daemon::spawn_with(&root.join("cache"), &["--workers", "3", "--queue-cap", "7"]);
    let (status, _, metrics) = daemon.get("/metrics", None);
    assert_eq!(status, 200);
    assert!(
        metrics.contains("gauge serve.workers 3\n"),
        "--workers must size the pool:\n{metrics}"
    );
    assert!(
        metrics.contains("gauge serve.queue.cap 7\n"),
        "--queue-cap must bound the accept queue:\n{metrics}"
    );
    daemon.kill();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn gzip_is_negotiated_end_to_end_over_the_real_binary() {
    let root = temp_root("gzip");
    let daemon = Daemon::spawn(&root.join("cache"));
    let path = "/v1/artifacts/T1?seed=7&scale=quick";
    let (status, _, identity) = daemon.get(path, None);
    assert_eq!(status, 200);
    // Raw fetch (no chunked auto-decode applies to the encoded bytes
    // either way — gzip output is binary, so fetch manually).
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nAccept-Encoding: gzip\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("receive");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete head");
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    assert!(head.contains("Content-Encoding: gzip"), "{head}");
    assert!(head.contains("Vary: Accept-Encoding"), "{head}");
    let framed = &raw[head_end + 4..];
    let payload = if head.contains("Transfer-Encoding: chunked") {
        serve::http::decode_chunked(framed).expect("valid chunked framing")
    } else {
        framed.to_vec()
    };
    let decoded = serve::gzip::decode(&payload).expect("valid gzip stream");
    assert_eq!(
        String::from_utf8(decoded).expect("utf-8 payload"),
        identity,
        "gzip and identity representations must decode to the same bytes"
    );
    daemon.kill();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let root = temp_root("sigterm");
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2"])
        .args(["--cache-dir", root.join("cache").to_str().unwrap()])
        .env_remove("REPRO_CHAOS")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr: SocketAddr = loop {
        let line = lines
            .next()
            .expect("daemon announces its address before exiting")
            .expect("stdout readable");
        if let Some(rest) = line.strip_prefix("serving on http://") {
            break rest.parse().expect("announced address parses");
        }
    };
    // Prove the daemon serves before the signal lands.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("receive");
    assert!(String::from_utf8_lossy(&raw).contains("200 OK"));

    // SIGTERM must drain and exit 0 — unlike the SIGKILL path above,
    // this is the orderly operator shutdown.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let mut stderr_text = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr_text)
        .expect("stderr readable");
    let status = child.wait().expect("daemon exits");
    assert!(
        status.success(),
        "graceful shutdown must exit 0, got {status:?}\nstderr:\n{stderr_text}"
    );
    assert!(
        stderr_text.contains("shutdown: signal received, draining in-flight requests"),
        "{stderr_text}"
    );
    assert!(
        stderr_text.contains("shutdown: drained, exiting"),
        "{stderr_text}"
    );
    // The drain flushed the run's telemetry: the request we made above
    // is visible in the flushed counters.
    assert!(stderr_text.contains("serve.request"), "{stderr_text}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn daemon_rejects_bad_requests_without_dying() {
    let root = temp_root("badreq");
    let daemon = Daemon::spawn(&root.join("cache"));
    let (status, _, body) = daemon.get("/v1/artifacts/ZZ?seed=1", None);
    assert_eq!(status, 404);
    assert!(body.contains("unknown experiment id"), "{body}");
    let (status, _, _) = daemon.get("/v1/artifacts/T1?scale=cosmic", None);
    assert_eq!(status, 400);
    let (status, _, _) = daemon.get("/nope", None);
    assert_eq!(status, 404);
    // Still alive and serving after every rejection.
    let (status, _, body) = daemon.get("/healthz", None);
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    daemon.kill();
    let _ = std::fs::remove_dir_all(&root);
}
