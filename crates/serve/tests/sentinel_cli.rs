//! Integration tests for the `repro sentinel` CLI: the dogfooded
//! green/green/red contract (two clean `repro all` runs build a
//! baseline, an env-degraded third run turns the audit red with a named
//! metric and a change-point), plus `record --from`, `report`, `watch`,
//! `clear`, and corrupt-record tolerance through the binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn temp_root(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("repro-sentinel-cli-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Outcome {
    success: bool,
    stdout: String,
    stderr: String,
}

fn run(cmd: &mut Command) -> Outcome {
    let output = cmd.output().expect("binary runs");
    Outcome {
        success: output.status.success(),
        stdout: String::from_utf8(output.stdout).unwrap(),
        stderr: String::from_utf8(output.stderr).unwrap(),
    }
}

/// One `repro all` into its own artifact dir, recording into `sdir`;
/// `slowdown_ms` arms the deterministic regression injection.
fn repro_all(sdir: &Path, out: &Path, slowdown_ms: Option<u64>) -> Outcome {
    let mut cmd = repro();
    cmd.args(["all", "--jobs", "4", "--seed", "42", "--no-cache"])
        .args(["--out", out.to_str().unwrap()])
        .args(["--sentinel-dir", sdir.to_str().unwrap()])
        .env_remove("REPRO_SLOWDOWN_MS");
    if let Some(ms) = slowdown_ms {
        cmd.env("REPRO_SLOWDOWN_MS", ms.to_string());
    }
    run(&mut cmd)
}

fn audit(sdir: &Path) -> Outcome {
    run(repro()
        .args(["sentinel", "audit", "--min-history", "2"])
        .args(["--sentinel-dir", sdir.to_str().unwrap()]))
}

#[test]
fn green_green_red_through_the_binary() {
    let root = temp_root("ggr");
    let sdir = root.join("history");

    // Run 1 (clean): records itself, audit is warm-up green.
    let one = repro_all(&sdir, &root.join("out1"), None);
    assert!(one.success, "{}", one.stderr);
    assert!(
        one.stderr.contains("sentinel: recorded run #1"),
        "repro all auto-records:\n{}",
        one.stderr
    );
    let verdict = audit(&sdir);
    assert!(
        verdict.success,
        "audit 1 must be green:\n{}",
        verdict.stdout
    );
    assert!(
        verdict.stdout.contains("verdict: warm-up"),
        "{}",
        verdict.stdout
    );

    // Run 2 (clean): one prior, still below min_history, still green.
    let two = repro_all(&sdir, &root.join("out2"), None);
    assert!(two.success, "{}", two.stderr);
    let verdict = audit(&sdir);
    assert!(
        verdict.success,
        "audit 2 must be green:\n{}",
        verdict.stdout
    );
    assert!(
        verdict.stdout.contains("verdict: warm-up"),
        "{}",
        verdict.stdout
    );

    // Run 3 (degraded): REPRO_SLOWDOWN_MS injects a deterministic
    // slowdown into every experiment. The run itself succeeds — the
    // *audit* is what turns red, names the metric, and reports the
    // change-point at the audited run (index 2 of the series).
    let three = repro_all(&sdir, &root.join("out3"), Some(250));
    assert!(three.success, "{}", three.stderr);
    let verdict = audit(&sdir);
    assert!(
        !verdict.success,
        "audit 3 must exit non-zero:\n{}",
        verdict.stdout
    );
    assert!(
        verdict.stdout.contains("verdict: REGRESSION in"),
        "{}",
        verdict.stdout
    );
    assert!(
        verdict.stdout.contains("total_wall_secs"),
        "the headline metric is named:\n{}",
        verdict.stdout
    );
    assert!(
        verdict.stdout.contains("change-point @ 2"),
        "the online detector places the shift:\n{}",
        verdict.stdout
    );

    // `report` renders the full history with the change-point marked.
    let report = run(repro()
        .args(["sentinel", "report", "--min-history", "2"])
        .args(["--sentinel-dir", sdir.to_str().unwrap()]));
    assert!(report.success, "{}", report.stderr);
    assert!(
        report.stdout.contains("total_wall_secs"),
        "{}",
        report.stdout
    );
    assert!(report.stdout.contains("change-point"), "{}", report.stdout);

    // `clear` empties the history (and only the history), after which
    // the audit has nothing to say.
    let clear = run(repro()
        .args(["sentinel", "clear"])
        .args(["--sentinel-dir", sdir.to_str().unwrap()]));
    assert!(clear.success, "{}", clear.stderr);
    assert!(
        clear.stdout.contains("removed 3 records"),
        "{}",
        clear.stdout
    );
    let verdict = audit(&sdir);
    assert!(verdict.success);
    assert!(
        verdict.stdout.contains("history is empty"),
        "{}",
        verdict.stdout
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn record_from_manifest_and_report() {
    let root = temp_root("record");
    let sdir = root.join("history");
    let out = root.join("out");

    // Produce a manifest without auto-recording, then ingest it
    // explicitly.
    let all = run(repro()
        .args([
            "all",
            "--jobs",
            "4",
            "--seed",
            "7",
            "--no-cache",
            "--no-sentinel",
        ])
        .args(["--out", out.to_str().unwrap()])
        .env_remove("REPRO_SLOWDOWN_MS"));
    assert!(all.success, "{}", all.stderr);
    assert!(
        !all.stderr.contains("sentinel: recorded"),
        "--no-sentinel suppresses auto-record:\n{}",
        all.stderr
    );

    let rec = run(repro()
        .args(["sentinel", "record"])
        .args(["--from", out.to_str().unwrap()])
        .args(["--sentinel-dir", sdir.to_str().unwrap()]));
    assert!(rec.success, "{}", rec.stderr);
    assert!(rec.stdout.contains("recorded run #1"), "{}", rec.stdout);

    // A missing manifest is an error, not a silent empty record.
    let bad = run(repro()
        .args(["sentinel", "record"])
        .args(["--from", root.join("nope").to_str().unwrap()])
        .args(["--sentinel-dir", sdir.to_str().unwrap()]));
    assert!(!bad.success);

    let report = run(repro()
        .args(["sentinel", "report"])
        .args(["--sentinel-dir", sdir.to_str().unwrap()]));
    assert!(report.success, "{}", report.stderr);
    assert!(
        report.stdout.contains("total_wall_secs"),
        "{}",
        report.stdout
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn watch_audits_records_that_arrive_while_it_runs() {
    let root = temp_root("watch");
    let sdir = root.join("history");
    let store = sentinel::HistoryStore::new(&sdir);
    let mk = |wall: f64| {
        let mut rec = sentinel::RunRecord::new("repro-all", "repro", "0.1.0", 42, "quick");
        rec.push_metric("total_wall_secs", wall).unwrap();
        rec
    };
    store.append(&mk(12.0)).unwrap();
    store.append(&mk(12.4)).unwrap();

    // Nothing new lands: a bounded watch exits green.
    let idle = run(repro()
        .args(["sentinel", "watch", "--min-history", "2"])
        .args(["--iterations", "2", "--poll-ms", "20"])
        .args(["--sentinel-dir", sdir.to_str().unwrap()]));
    assert!(idle.success, "{}", idle.stderr);
    assert!(idle.stderr.contains("sentinel watch"), "{}", idle.stderr);

    // A degraded record appended while the watcher polls turns it red.
    let child = repro()
        .args(["sentinel", "watch", "--min-history", "2"])
        .args(["--iterations", "40", "--poll-ms", "50"])
        .args(["--sentinel-dir", sdir.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("watch spawns");
    // Give the watcher time to seed its cursor from the existing
    // history before the regression lands.
    std::thread::sleep(std::time::Duration::from_millis(500));
    store.append(&mk(30.0)).unwrap();
    let output = child.wait_with_output().expect("watch exits");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(
        !output.status.success(),
        "watch exits non-zero after a regression:\n{stdout}"
    );
    assert!(
        stdout.contains("verdict: REGRESSION in total_wall_secs"),
        "{stdout}"
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn watch_exits_cleanly_when_the_history_directory_disappears() {
    let root = temp_root("gone");
    let sdir = root.join("history");
    let store = sentinel::HistoryStore::new(&sdir);
    let mut rec = sentinel::RunRecord::new("repro-all", "repro", "0.1.0", 42, "quick");
    rec.push_metric("total_wall_secs", 12.0).unwrap();
    store.append(&rec).unwrap();

    // An unbounded watch over an existing history; deleting the
    // directory mid-watch must end the process with a clear error, not
    // leave it polling an empty void forever.
    let child = repro()
        .args(["sentinel", "watch", "--min-history", "2"])
        .args(["--poll-ms", "20"])
        .args(["--sentinel-dir", sdir.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("watch spawns");
    std::thread::sleep(std::time::Duration::from_millis(300));
    std::fs::remove_dir_all(&sdir).unwrap();
    let started = std::time::Instant::now();
    let output = child.wait_with_output().expect("watch exits");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "watch must notice the deleted directory promptly"
    );
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(
        !output.status.success(),
        "watch exits non-zero when its history vanishes:\n{stderr}"
    );
    assert!(
        stderr.contains("history directory") && stderr.contains("disappeared"),
        "{stderr}"
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn audit_tolerates_a_torn_record() {
    let root = temp_root("torn");
    let sdir = root.join("history");
    let store = sentinel::HistoryStore::new(&sdir);
    let mut rec = sentinel::RunRecord::new("repro-all", "repro", "0.1.0", 42, "quick");
    rec.push_metric("total_wall_secs", 12.0).unwrap();
    store.append(&rec).unwrap();
    let whole = rec.encode().unwrap();
    std::fs::write(sdir.join("00000002.rec"), &whole[..whole.len() / 2]).unwrap();

    let verdict = audit(&sdir);
    assert!(verdict.success, "{}", verdict.stdout);
    assert!(
        verdict.stderr.contains("skipped 1 corrupt record file(s)"),
        "{}",
        verdict.stderr
    );

    let _ = std::fs::remove_dir_all(&root);
}
