//! `repro collect --distributed N` and `repro journal fsck` through the
//! real binary: a supervisor process spawning genuine worker
//! subprocesses over the exchange directory, with chaos kills firing
//! mid-unit — the merged journal must be byte-identical to a
//! single-process `--jobs 1` collection, and fsck must prove it clean.
//!
//! The chaos seeds here are the CI harness's: both produce worker
//! deaths *and* reassignments at quick scale, so the counters in the
//! summary line are load-bearing assertions, not smoke.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_root(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "repro-distributed-cli-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env_remove("REPRO_CHAOS")
        .env_remove("REPRO_STREAM")
        .output()
        .expect("repro runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

fn journal_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("journal directory is readable")
        .map(|e| {
            let path = e.expect("entry").path();
            let name = path.file_name().unwrap().to_str().unwrap().to_string();
            (name, std::fs::read(&path).expect("file readable"))
        })
        .collect()
}

/// The counter value from the supervisor's greppable summary line.
fn counter(out: &str, name: &str) -> u64 {
    let needle = format!("{name}=");
    out.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("summary line must carry {name}: {out}"))
        .parse()
        .expect("counter parses")
}

#[test]
fn distributed_chaos_runs_are_byte_identical_to_single_process() {
    let root = temp_root("chaos");
    let ref_dir = root.join("reference");
    let out = repro(&[
        "collect",
        "--journal",
        ref_dir.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert!(out.status.success(), "{out:?}");
    let reference = journal_bytes(&ref_dir);
    assert!(reference.contains_key("journal.meta"));

    // Two fleet sizes, two chaos seeds, every run killing workers
    // mid-unit (the seeds are chosen so deaths and reassignments are
    // guaranteed at quick scale).
    for (workers, chaos) in [("2", "1702"), ("4", "90210")] {
        let dist_dir = root.join(format!("dist-{chaos}"));
        let manifest_dir = root.join(format!("manifest-{chaos}"));
        let out = repro(&[
            "collect",
            "--journal",
            dist_dir.to_str().unwrap(),
            "--distributed",
            workers,
            "--chaos",
            chaos,
            "--stale-ms",
            "500",
            "--out",
            manifest_dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{out:?}");
        let text = stdout(&out);
        assert!(
            counter(&text, "collect.worker.died") > 0,
            "the chaos seed must fell workers: {text}"
        );
        assert!(
            counter(&text, "collect.worker.reassigned") > 0,
            "orphaned units must be reassigned: {text}"
        );
        assert_eq!(counter(&text, "collect.worker.quarantined"), 0, "{text}");
        assert_eq!(
            journal_bytes(&dist_dir),
            reference,
            "the merged journal must be byte-identical to --jobs 1"
        );
        // A converged run cleans up its exchange by default.
        assert!(
            !dist_dir.with_extension("exchange").exists()
                && !PathBuf::from(format!("{}.exchange", dist_dir.display())).exists(),
            "the exchange directory must be removed after convergence"
        );
        // The manifest records the distributed section. Offline builds
        // link a serde_json stub that serializes to an empty string, so
        // the content assertions only bind where the real serializer is
        // present; the file itself must exist either way.
        let manifest =
            std::fs::read_to_string(manifest_dir.join("manifest.json")).expect("manifest written");
        if !manifest.is_empty() {
            assert!(manifest.contains("\"distributed\""), "{manifest}");
            assert!(manifest.contains("\"enabled\": true"), "{manifest}");
        }
        // The merged journal passes fsck.
        let fsck = repro(&["journal", "fsck", dist_dir.to_str().unwrap()]);
        assert!(fsck.status.success(), "{fsck:?}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fsck_exit_codes_are_the_ci_contract() {
    let root = temp_root("fsck");
    let journal = root.join("journal");
    let out = repro(&[
        "collect",
        "--journal",
        journal.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert!(out.status.success(), "{out:?}");

    // Clean: exit 0.
    let clean = repro(&["journal", "fsck", journal.to_str().unwrap()]);
    assert!(clean.status.success(), "{clean:?}");
    assert!(stdout(&clean).contains("0 corrupt"));

    // Truncate one shard and plant a stray: exit 1, findings named.
    let shard = std::fs::read_dir(&journal)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "shard"))
        .expect("journal holds shards");
    let raw = std::fs::read(&shard).unwrap();
    std::fs::write(&shard, &raw[..raw.len() / 2]).unwrap();
    std::fs::write(journal.join("stray.txt"), "not a shard").unwrap();
    let dirty = repro(&["journal", "fsck", journal.to_str().unwrap()]);
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let text = stdout(&dirty);
    assert!(text.contains("corrupt:"), "{text}");
    assert!(text.contains("orphan: stray.txt"), "{text}");

    // Not a journal at all: exit 2.
    let empty = root.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let not_journal = repro(&["journal", "fsck", empty.to_str().unwrap()]);
    assert_eq!(not_journal.status.code(), Some(2), "{not_journal:?}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn collect_requires_a_journal_directory() {
    let out = repro(&["collect"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--journal"),
        "{out:?}"
    );
}
