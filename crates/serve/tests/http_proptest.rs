//! Property tests for the hand-rolled HTTP parser (`serve::http`):
//! arbitrary byte soup, oversized lines and header blocks, hostile
//! percent-encoding, and pipelined request streams must never panic —
//! every outcome is a valid parse, a clean end-of-stream, or a typed
//! [`ParseError`] the server maps to a well-formed 4xx.

use std::io::BufReader;

use proptest::prelude::*;
use serve::http::{decode_chunked, ParseError};
use serve::Request;

/// Parses requests off `bytes` until end-of-stream or the first error —
/// exactly the server's keep-alive loop, minus the sockets.
fn parse_all(bytes: &[u8]) -> (Vec<Request>, Option<ParseError>) {
    let mut reader = BufReader::new(bytes);
    let mut requests = Vec::new();
    loop {
        match Request::read_from(&mut reader) {
            Ok(Some(req)) => requests.push(req),
            Ok(None) => return (requests, None),
            Err(err) => return (requests, Some(err)),
        }
    }
}

proptest! {
    // The parser's only job under hostile input is to not panic and to
    // classify: every byte soup ends in a clean EOF or a typed error.
    #[test]
    fn arbitrary_byte_soup_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let (_requests, _err) = parse_all(&bytes);
    }

    // Printable-ASCII soup with CRLFs sprinkled in exercises the
    // line-splitting paths much harder than uniform bytes do.
    #[test]
    fn structured_ascii_soup_never_panics(s in "[ -~\r\n]{0,512}") {
        let (_requests, _err) = parse_all(s.as_bytes());
    }

    // A request line past MAX_LINE is refused as malformed — the buffer
    // must not grow to accommodate it.
    #[test]
    fn oversized_request_lines_are_malformed(extra in 1usize..4096) {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8 * 1024 + extra));
        let (requests, err) = parse_all(raw.as_bytes());
        prop_assert!(requests.is_empty());
        prop_assert!(matches!(err, Some(ParseError::Malformed(_))));
    }

    // More headers than MAX_HEADERS is a client error, not an
    // allocation.
    #[test]
    fn oversized_header_blocks_are_malformed(n in 65usize..128) {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..n {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let (requests, err) = parse_all(raw.as_bytes());
        prop_assert!(requests.is_empty());
        prop_assert!(matches!(err, Some(ParseError::Malformed(_))));
    }

    // Percent-encoding in query strings — including dangling `%`, bad
    // hex, and `+` — always decodes to *something* without panicking,
    // and never corrupts the path.
    #[test]
    fn hostile_percent_encoding_decodes_without_panic(
        q in "[%a-zA-Z0-9+=&.]{0,64}",
    ) {
        let raw = format!("GET /v1/artifacts/T1?{q} HTTP/1.1\r\n\r\n");
        let (requests, err) = parse_all(raw.as_bytes());
        prop_assert!(err.is_none(), "{err:?}");
        prop_assert_eq!(requests.len(), 1);
        prop_assert_eq!(requests[0].path.as_str(), "/v1/artifacts/T1");
    }

    // Pipelined well-formed requests parse in order; a torn tail after
    // them is an error for the tail only, never a panic and never a
    // corruption of the requests already parsed.
    #[test]
    fn pipelined_requests_parse_in_order(n in 1usize..16, torn_tail in any::<bool>()) {
        let mut raw = String::new();
        for i in 0..n {
            raw.push_str(&format!("GET /r/{i} HTTP/1.1\r\nHost: t\r\n\r\n"));
        }
        if torn_tail {
            raw.push_str("GET /trunc");
        }
        let (requests, err) = parse_all(raw.as_bytes());
        prop_assert_eq!(requests.len(), n);
        for (i, req) in requests.iter().enumerate() {
            prop_assert_eq!(req.path.clone(), format!("/r/{i}"));
            prop_assert_eq!(req.minor, 1);
        }
        if torn_tail {
            prop_assert!(matches!(err, Some(ParseError::Malformed(_))));
        } else {
            prop_assert!(err.is_none(), "{err:?}");
        }
    }

    // The chunked-framing decoder is fed untrusted bytes by tests and
    // harnesses; it must reject damage, never panic.
    #[test]
    fn chunked_decoding_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_chunked(&bytes);
    }
}

// Deterministic companions to the properties above: a seeded xorshift
// fuzz sweep that runs everywhere (the proptest harness is unavailable
// in offline builds), so the never-panic contract is exercised by
// tier-1 CI too.

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn seeded_byte_soup_sweep_never_panics() {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for round in 0..512 {
        let len = (xorshift(&mut state) % 1024) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push(xorshift(&mut state) as u8);
        }
        // Bias half the rounds toward HTTP-shaped prefixes so the soup
        // reaches deep parser states, not just the method check.
        if round % 2 == 0 {
            let mut shaped = b"GET /v1/artifacts/T1?seed=".to_vec();
            shaped.extend_from_slice(&bytes);
            bytes = shaped;
        }
        let _ = parse_all(&bytes);
        let _ = decode_chunked(&bytes);
    }
}

#[test]
fn oversized_request_line_is_refused_deterministically() {
    let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9 * 1024));
    let (requests, err) = parse_all(raw.as_bytes());
    assert!(requests.is_empty());
    assert!(matches!(err, Some(ParseError::Malformed(_))), "{err:?}");
}

#[test]
fn oversized_header_block_is_refused_deterministically() {
    let mut raw = String::from("GET / HTTP/1.1\r\n");
    for i in 0..80 {
        raw.push_str(&format!("x-h{i}: v\r\n"));
    }
    raw.push_str("\r\n");
    let (requests, err) = parse_all(raw.as_bytes());
    assert!(requests.is_empty());
    assert!(matches!(err, Some(ParseError::Malformed(_))), "{err:?}");
}

#[test]
fn hostile_percent_encoding_is_tolerated_deterministically() {
    for q in ["%", "%%", "%zz", "a=%4", "a=%G1&b=+", "=%25%25%", "&&&=%"] {
        let raw = format!("GET /v1/artifacts/T1?{q} HTTP/1.1\r\n\r\n");
        let (requests, err) = parse_all(raw.as_bytes());
        assert!(err.is_none(), "query `{q}`: {err:?}");
        assert_eq!(requests.len(), 1, "query `{q}`");
        assert_eq!(requests[0].path, "/v1/artifacts/T1", "query `{q}`");
    }
}

#[test]
fn pipelined_requests_with_torn_tail_parse_deterministically() {
    let mut raw = String::new();
    for i in 0..5 {
        raw.push_str(&format!("GET /r/{i} HTTP/1.1\r\nHost: t\r\n\r\n"));
    }
    raw.push_str("GET /trunc");
    let (requests, err) = parse_all(raw.as_bytes());
    assert_eq!(requests.len(), 5);
    for (i, req) in requests.iter().enumerate() {
        assert_eq!(req.path, format!("/r/{i}"));
        assert_eq!(req.minor, 1);
    }
    assert!(matches!(err, Some(ParseError::Malformed(_))), "{err:?}");
}
