//! Integration tests driving the `repro` binary as a subprocess.

use std::process::Command;

fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    // Successful runs auto-record into the sentinel history; tests must
    // not append to the developer's real baseline.
    cmd.arg("--no-sentinel");
    cmd
}

#[test]
fn list_prints_every_experiment() {
    let out = repro().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for id in ["T1", "T7", "F1", "F16"] {
        assert!(stdout.contains(id), "missing {id} in list output");
    }
    assert_eq!(stdout.lines().count(), 25); // header + 24 experiments.
}

#[test]
fn list_shows_cost_classes() {
    let out = repro().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let header = stdout.lines().next().unwrap();
    assert!(
        header.contains("cost"),
        "header lacks cost column: {header}"
    );
    let f9 = stdout.lines().find(|l| l.starts_with("F9 ")).unwrap();
    assert!(f9.contains("heavy"), "F9 should be heavy: {f9}");
    let t1 = stdout.lines().find(|l| l.starts_with("T1 ")).unwrap();
    assert!(t1.contains("light"), "T1 should be light: {t1}");
}

#[test]
fn injected_failure_reports_its_id_and_keeps_sibling_artifacts() {
    let dir = std::env::temp_dir().join(format!("repro-cli-fail-{}", std::process::id()));
    let out = repro()
        .args([
            "T1",
            "F1",
            "T2",
            "--seed",
            "7",
            "--no-cache",
            "--out",
            dir.to_str().unwrap(),
        ])
        .env("REPRO_FAIL", "F1")
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "a failing experiment must exit non-zero"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("experiment F1 failed"),
        "failure is reported per-id: {stderr}"
    );
    assert!(stderr.contains("injected failure"), "{stderr}");
    // Siblings still render and land on disk.
    assert!(stdout.contains("[T1]"), "T1 artifacts survive the failure");
    assert!(stdout.contains("[T2]"), "T2 artifacts survive the failure");
    assert!(!stdout.contains("[F1]"), "F1 produced no artifacts");
    assert!(dir.join("T1.csv").exists());
    assert!(dir.join("T2.csv").exists());
    assert!(!dir.join("F1.csv").exists());
    // The manifest is still written, recording zero artifacts for F1.
    assert!(dir.join("manifest.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_chrome_needs_out_and_writes_the_converted_trace() {
    let out = repro()
        .args(["T1", "--trace-chrome"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "--trace-chrome without --out fails");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--trace-chrome needs --out"), "{stderr}");

    let dir = std::env::temp_dir().join(format!("repro-cli-chrome-{}", std::process::id()));
    let out = repro()
        .args([
            "T1",
            "--seed",
            "7",
            "--no-cache",
            "--trace-chrome",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --trace-chrome implies --trace: both serialized traces land.
    for name in ["trace.json", "trace.chrome.json"] {
        let payload = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("missing {name}: {e}"));
        assert!(!payload.trim().is_empty(), "{name} is empty");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_id_fails_fast_with_message() {
    let out = repro().arg("F99").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown experiment id"));
}

#[test]
fn bad_flags_fail_cleanly() {
    for args in [
        vec!["T1", "--scale", "huge"],
        vec!["T1", "--seed", "abc"],
        vec!["--scale"],
    ] {
        let out = repro().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn no_ids_is_an_error() {
    let out = repro().output().expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn t2_runs_and_writes_csv_and_json() {
    let dir = std::env::temp_dir().join(format!("repro-cli-test-{}", std::process::id()));
    let out = repro()
        .args([
            "T2",
            "--seed",
            "7",
            "--no-cache",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("disk-rand-write"));
    let csv = std::fs::read_to_string(dir.join("T2.csv")).unwrap();
    assert!(csv.starts_with("benchmark,"));

    let out = repro()
        .args([
            "T2",
            "--seed",
            "7",
            "--no-cache",
            "--out",
            dir.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let json = std::fs::read_to_string(dir.join("T2.json")).unwrap();
    assert!(json.contains("\"Table\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_flag_prints_a_summary_table_and_still_writes_json() {
    let dir = std::env::temp_dir().join(format!("repro-cli-metrics-{}", std::process::id()));
    let out = repro()
        .args([
            "F3",
            "--seed",
            "7",
            "--jobs",
            "2",
            "--no-cache",
            "--metrics",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The rendered summary table is on stdout, next to the timing table.
    assert!(
        stdout.contains("metrics summary"),
        "metrics table header missing:\n{stdout}"
    );
    for metric in [
        "campaign.workers",
        "campaign.records",
        "campaign.machine_secs",
    ] {
        assert!(stdout.contains(metric), "metrics table missing {metric}");
    }
    // --jobs 2 is visible in the gauge the campaign sets.
    let workers_row = stdout
        .lines()
        .find(|l| l.contains("campaign.workers"))
        .expect("workers gauge row");
    assert!(workers_row.contains('2'), "bad workers row: {workers_row}");
    // The per-worker shard histograms surface too.
    assert!(stdout.contains("campaign.machine_secs.w0"));
    assert!(stdout.contains("campaign.machine_secs.w1"));
    // The table is additive: metrics.json still lands in --out.
    let json = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    assert!(!json.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jobs_flag_rejects_zero_and_garbage() {
    let out = repro()
        .args(["F1", "--jobs", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--jobs must be at least 1"), "{stderr}");

    let out = repro()
        .args(["F1", "--jobs", "many"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("bad job count"), "{stderr}");

    let out = repro()
        .args(["F1", "--jobs"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn worker_count_never_changes_artifacts_or_stdout() {
    let run = |jobs: &str| {
        let dir = std::env::temp_dir().join(format!("repro-cli-jobs{jobs}-{}", std::process::id()));
        let out = repro()
            // --no-cache: the point is to exercise the scheduler at both
            // worker counts, not to replay the first run's artifacts.
            .args([
                "F3",
                "--seed",
                "11",
                "--jobs",
                jobs,
                "--no-cache",
                "--out",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let csv = std::fs::read(dir.join("F3.csv")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (String::from_utf8(out.stdout).unwrap(), csv)
    };
    let (stdout_seq, csv_seq) = run("1");
    let (stdout_par, csv_par) = run("4");
    assert_eq!(
        stdout_seq, stdout_par,
        "--jobs 4 must render byte-identical tables to --jobs 1"
    );
    assert_eq!(
        csv_seq, csv_par,
        "--jobs 4 must write byte-identical artifacts to --jobs 1"
    );
}

#[test]
fn help_documents_the_jobs_and_metrics_flags() {
    let out = repro().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("--jobs N"));
    assert!(stdout.contains("--metrics"));
    assert!(stdout.contains("metrics summary table"));
}

#[test]
fn help_documents_resume_and_chaos() {
    let out = repro().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("--resume DIR"));
    assert!(stdout.contains("--chaos SEED"));
    assert!(stdout.contains("REPRO_CHAOS"));
}

#[test]
fn chaos_run_converges_and_is_byte_identical_to_a_clean_run() {
    let tag = std::process::id();
    let clean_dir = std::env::temp_dir().join(format!("repro-cli-chaos-clean-{tag}"));
    let clean = repro()
        .args([
            "T1",
            "F1",
            "--seed",
            "7",
            "--no-cache",
            "--out",
            clean_dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let chaos_dir = std::env::temp_dir().join(format!("repro-cli-chaos-out-{tag}"));
    let journal_dir = std::env::temp_dir().join(format!("repro-cli-chaos-journal-{tag}"));
    let _ = std::fs::remove_dir_all(&journal_dir);
    // Worker deaths exit non-zero mid-campaign; --resume picks up the
    // journal, so repeated invocations converge (at most one kill per
    // machine). 40 attempts covers the quick fleet's theoretical bound.
    let mut last = None;
    for _ in 0..40 {
        let out = repro()
            .args([
                "T1",
                "F1",
                "--seed",
                "7",
                "--no-cache",
                "--chaos",
                "1702",
                "--resume",
                journal_dir.to_str().unwrap(),
                "--out",
                chaos_dir.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        if out.status.success() {
            last = Some(out);
            break;
        }
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("rerun with --resume"),
            "non-zero chaos exits must hint at resume: {stderr}"
        );
    }
    let out = last.expect("chaos run converged within 40 resumes");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("chaos armed (seed 1702)"), "{stderr}");
    assert!(
        stderr.contains("faults:"),
        "fault summary on stderr: {stderr}"
    );
    // The contract: a chaos run that completes is byte-identical to a
    // fault-free run — stdout report and every artifact.
    assert_eq!(out.stdout, clean.stdout, "stdout must be byte-identical");
    for name in ["T1.csv", "F1.csv"] {
        let a = std::fs::read(clean_dir.join(name)).unwrap();
        let b = std::fs::read(chaos_dir.join(name)).unwrap();
        assert_eq!(a, b, "{name} must be byte-identical under chaos");
    }
    for dir in [&clean_dir, &chaos_dir] {
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let _ = std::fs::remove_dir_all(&journal_dir);
}

#[test]
fn completed_journal_resumes_as_a_noop() {
    let tag = std::process::id();
    let journal_dir = std::env::temp_dir().join(format!("repro-cli-noop-journal-{tag}"));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let run = || {
        repro()
            .args([
                "T1",
                "--seed",
                "7",
                "--no-cache",
                "--resume",
                journal_dir.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs")
    };
    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stderr = String::from_utf8(first.stderr).unwrap();
    assert!(stderr.contains("0 shards replayed"), "{stderr}");
    let second = run();
    assert!(second.status.success());
    let stderr = String::from_utf8(second.stderr).unwrap();
    assert!(
        stderr.contains("0 machines collected"),
        "a complete journal replays everything: {stderr}"
    );
    assert_eq!(first.stdout, second.stdout, "replay is byte-identical");
    let _ = std::fs::remove_dir_all(&journal_dir);
}

#[test]
fn truncated_manifest_is_replaced_atomically() {
    let dir = std::env::temp_dir().join(format!("repro-cli-truncmf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Simulate a crash mid-write under the OLD (non-atomic) scheme: a
    // garbage half-manifest is already on disk.
    std::fs::write(dir.join("manifest.json"), "{\"truncated").unwrap();
    let out = repro()
        .args([
            "T1",
            "--seed",
            "7",
            "--no-cache",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(
        manifest.trim_start().starts_with('{') && !manifest.contains("\"truncated"),
        "manifest must be rewritten whole: {manifest}"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_changes_measured_artifacts_but_not_structure() {
    let run = |seed: &str| {
        let out = repro()
            .args(["F1", "--seed", seed, "--no-cache"])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let a = run("1");
    let b = run("1");
    let c = run("2");
    assert_eq!(a, b, "same seed must reproduce identical output");
    assert_ne!(a, c, "different seeds must differ");
    assert!(c.contains("[F1]"));
}
