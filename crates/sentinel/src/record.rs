//! One run, one record: the unit the history stores and the audit reads.
//!
//! Records use a checksummed line format rather than JSON so that the
//! codec has zero dependencies, the checksum covers exactly the payload
//! bytes, and a truncated file is detectable by construction (the same
//! reasoning as the artifact cache's entry format). Metric values are
//! serialized as `f64` bit patterns, so a record round-trips exactly.

use crate::{fnv1a64, Result, SentinelError};
use std::collections::BTreeMap;
use telemetry::{RunManifest, MANIFEST_SCHEMA_VERSION};

/// Version of the record format. Bump on any change to the envelope or
/// payload grammar.
pub const RECORD_SCHEMA_VERSION: u32 = 1;

/// First line of every record file.
const RECORD_HEADER: &str = "sentinel-record v1";

/// One observed run: identity, audited metrics, and informational notes.
///
/// **Metrics vs notes.** `metrics` are numeric, *lower-is-better*
/// quantities the audit scores (wall times, latencies). `notes` are
/// provenance strings the audit ignores — cache and fault counters,
/// dataset sizes, host facts — kept so a flagged record can be explained
/// without re-running anything. Putting a counter that legitimately
/// varies across runs (cache hits cold vs hot) into `metrics` would
/// false-flag; that is what `notes` is for.
///
/// Both maps are `BTreeMap`s: records render and serialize in metric
/// name order, matching the telemetry snapshot ordering contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Record format version ([`RECORD_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// What kind of run this was: `"repro-all"`, `"campaign"`,
    /// `"bench"`, or a caller-chosen label. Audits only compare runs of
    /// the same kind.
    pub kind: String,
    /// Producing tool (e.g. `"repro"`).
    pub tool: String,
    /// Version of the producing tool.
    pub version: String,
    /// RNG seed the run was driven by.
    pub seed: u64,
    /// Scale preset (`"quick"` or `"paper"`). Audits only compare runs
    /// at the same scale.
    pub scale: String,
    /// Fingerprint of the work the run did: `"all"` for the full
    /// registry, or a hash of the selected subset
    /// ([`workload_fingerprint`]). Audits only compare runs with equal
    /// fingerprints — a 3-experiment run must not be scored against a
    /// 24-experiment history.
    pub workload: String,
    /// Unix timestamp (whole seconds) when the run was recorded.
    pub unix_secs: u64,
    /// Audited numeric metrics, lower-is-better, in name order.
    pub metrics: BTreeMap<String, f64>,
    /// Informational provenance, ignored by the audit.
    pub notes: BTreeMap<String, String>,
}

/// Canonical fingerprint for a selected experiment subset: `"all"` when
/// nothing was filtered, otherwise a stable digest of the sorted ids.
pub fn workload_fingerprint(selected: Option<&[String]>) -> String {
    match selected {
        None => "all".to_string(),
        Some(ids) => {
            let mut sorted: Vec<&str> = ids.iter().map(String::as_str).collect();
            sorted.sort_unstable();
            format!("sel-{:016x}", fnv1a64(sorted.join(",").as_bytes()))
        }
    }
}

impl RunRecord {
    /// Starts an empty record for `kind`, stamped with the current time.
    pub fn new(kind: &str, tool: &str, version: &str, seed: u64, scale: &str) -> Self {
        RunRecord {
            schema_version: RECORD_SCHEMA_VERSION,
            kind: kind.to_string(),
            tool: tool.to_string(),
            version: version.to_string(),
            seed,
            scale: scale.to_string(),
            workload: "all".to_string(),
            unix_secs: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            metrics: BTreeMap::new(),
            notes: BTreeMap::new(),
        }
    }

    /// Builds a record from a run manifest, enforcing the manifest
    /// schema contract: version 0 (pre-versioning) and the current
    /// version ingest normally; anything newer is refused with
    /// [`SentinelError::SchemaTooNew`] rather than misread.
    ///
    /// Wall times become audited metrics (`total_wall_secs` plus one
    /// `wall_secs.<id>` per experiment); cache and fault summaries,
    /// dataset sizes, and artifact counts become notes, because they
    /// legitimately differ between e.g. cold- and hot-cache runs.
    pub fn from_manifest(manifest: &RunManifest, kind: &str, workload: &str) -> Result<Self> {
        if manifest.schema_version > MANIFEST_SCHEMA_VERSION {
            return Err(SentinelError::SchemaTooNew {
                found: manifest.schema_version,
                supported: MANIFEST_SCHEMA_VERSION,
            });
        }
        let mut rec = RunRecord::new(
            kind,
            &manifest.tool,
            &manifest.version,
            manifest.seed,
            &manifest.scale,
        );
        rec.workload = workload.to_string();
        rec.unix_secs = manifest.started_unix_secs;
        rec.metrics
            .insert("total_wall_secs".to_string(), manifest.total_wall_secs);
        for exp in &manifest.experiments {
            rec.metrics
                .insert(format!("wall_secs.{}", exp.id), exp.wall_secs);
        }
        rec.notes.insert(
            "artifact_count".to_string(),
            manifest.artifact_count.to_string(),
        );
        rec.notes
            .insert("machines".to_string(), manifest.machines.to_string());
        rec.notes
            .insert("records".to_string(), manifest.records.to_string());
        rec.notes.insert(
            "host".to_string(),
            format!(
                "{}/{} {} cpus",
                manifest.host.os, manifest.host.arch, manifest.host.cpus
            ),
        );
        if manifest.schema_version == 0 {
            // Graceful upgrade: remember that this run predates manifest
            // versioning so a reader of the history knows why.
            rec.notes.insert(
                "manifest_schema".to_string(),
                "0 (legacy, upgraded)".to_string(),
            );
        }
        if let Some(cache) = &manifest.cache {
            rec.notes.insert("cache".to_string(), cache.summary());
        }
        if let Some(faults) = &manifest.faults {
            rec.notes.insert("faults".to_string(), faults.summary());
        }
        if let Some(distributed) = &manifest.distributed {
            rec.notes
                .insert("distributed".to_string(), distributed.summary());
        }
        Ok(rec)
    }

    /// Adds one audited metric. Non-finite values are rejected at the
    /// boundary so the store never holds an unauditable number.
    pub fn push_metric(&mut self, name: &str, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(SentinelError::InvalidConfig(format!(
                "metric `{name}` is not finite ({value})"
            )));
        }
        self.metrics.insert(name.to_string(), value);
        Ok(())
    }

    /// Adds one informational note.
    pub fn push_note(&mut self, name: &str, value: &str) {
        self.notes.insert(name.to_string(), value.to_string());
    }

    /// Serializes to the checksummed record format.
    ///
    /// Envelope:
    ///
    /// ```text
    /// sentinel-record v1
    /// schema 1
    /// checksum <16 hex digits of fnv1a64(payload)>
    /// payload <byte length of payload>
    /// <payload>
    /// ```
    ///
    /// Payload lines are `key value` pairs; `metric <name> <bits> <display>`
    /// carries the exact `f64` bit pattern plus a human-readable
    /// rendering, and `note <name> <text>` carries provenance. Names
    /// must not contain whitespace (enforced on encode).
    pub fn encode(&self) -> Result<String> {
        let mut payload = String::new();
        payload.push_str(&format!("kind {}\n", self.kind));
        payload.push_str(&format!("tool {}\n", self.tool));
        payload.push_str(&format!("version {}\n", self.version));
        payload.push_str(&format!("seed {}\n", self.seed));
        payload.push_str(&format!("scale {}\n", self.scale));
        payload.push_str(&format!("workload {}\n", self.workload));
        payload.push_str(&format!("unix {}\n", self.unix_secs));
        for (name, value) in &self.metrics {
            if name.chars().any(char::is_whitespace) || name.is_empty() {
                return Err(SentinelError::InvalidConfig(format!(
                    "metric name `{name}` is empty or contains whitespace"
                )));
            }
            payload.push_str(&format!(
                "metric {} {:016x} {}\n",
                name,
                value.to_bits(),
                value
            ));
        }
        for (name, text) in &self.notes {
            if name.chars().any(char::is_whitespace) || name.is_empty() {
                return Err(SentinelError::InvalidConfig(format!(
                    "note name `{name}` is empty or contains whitespace"
                )));
            }
            if text.contains('\n') {
                return Err(SentinelError::InvalidConfig(format!(
                    "note `{name}` contains a newline"
                )));
            }
            payload.push_str(&format!("note {} {}\n", name, text));
        }
        Ok(format!(
            "{RECORD_HEADER}\nschema {}\nchecksum {:016x}\npayload {}\n{payload}",
            self.schema_version,
            fnv1a64(payload.as_bytes()),
            payload.len(),
        ))
    }

    /// Decodes a record, verifying header, schema, length, and checksum.
    /// Any mismatch is [`SentinelError::Corrupt`] — the history loader
    /// skips such files instead of trusting half a record.
    pub fn decode(text: &str) -> Result<Self> {
        let corrupt = |why: &str| SentinelError::Corrupt(why.to_string());
        let mut lines = text.splitn(5, '\n');
        let header = lines.next().ok_or_else(|| corrupt("empty file"))?;
        if header != RECORD_HEADER {
            return Err(corrupt(&format!("bad header `{header}`")));
        }
        let schema_line = lines.next().ok_or_else(|| corrupt("missing schema line"))?;
        let schema_version: u32 = schema_line
            .strip_prefix("schema ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("malformed schema line"))?;
        if schema_version > RECORD_SCHEMA_VERSION {
            return Err(SentinelError::SchemaTooNew {
                found: schema_version,
                supported: RECORD_SCHEMA_VERSION,
            });
        }
        let checksum_line = lines
            .next()
            .ok_or_else(|| corrupt("missing checksum line"))?;
        let expect_sum = checksum_line
            .strip_prefix("checksum ")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| corrupt("malformed checksum line"))?;
        let len_line = lines
            .next()
            .ok_or_else(|| corrupt("missing payload line"))?;
        let expect_len: usize = len_line
            .strip_prefix("payload ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("malformed payload line"))?;
        let payload = lines.next().ok_or_else(|| corrupt("missing payload"))?;
        if payload.len() != expect_len {
            return Err(corrupt(&format!(
                "payload length {} != declared {expect_len} (truncated write?)",
                payload.len()
            )));
        }
        if fnv1a64(payload.as_bytes()) != expect_sum {
            return Err(corrupt("payload checksum mismatch"));
        }

        let mut rec = RunRecord {
            schema_version,
            kind: String::new(),
            tool: String::new(),
            version: String::new(),
            seed: 0,
            scale: String::new(),
            workload: String::new(),
            unix_secs: 0,
            metrics: BTreeMap::new(),
            notes: BTreeMap::new(),
        };
        for line in payload.lines() {
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(&format!("malformed payload line `{line}`")))?;
            match key {
                "kind" => rec.kind = rest.to_string(),
                "tool" => rec.tool = rest.to_string(),
                "version" => rec.version = rest.to_string(),
                "seed" => {
                    rec.seed = rest.parse().map_err(|_| corrupt("malformed seed"))?;
                }
                "scale" => rec.scale = rest.to_string(),
                "workload" => rec.workload = rest.to_string(),
                "unix" => {
                    rec.unix_secs = rest.parse().map_err(|_| corrupt("malformed unix"))?;
                }
                "metric" => {
                    let mut parts = rest.splitn(3, ' ');
                    let name = parts.next().ok_or_else(|| corrupt("metric without name"))?;
                    let bits = parts
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| corrupt("metric without bit pattern"))?;
                    // The trailing display value is for humans; bits win.
                    rec.metrics.insert(name.to_string(), f64::from_bits(bits));
                }
                "note" => {
                    let (name, text) = rest
                        .split_once(' ')
                        .ok_or_else(|| corrupt("note without value"))?;
                    rec.notes.insert(name.to_string(), text.to_string());
                }
                // Forward compatibility within a schema version: unknown
                // keys are provenance we don't understand yet, not
                // corruption.
                _ => {}
            }
        }
        if rec.kind.is_empty() {
            return Err(corrupt("record has no kind"));
        }
        Ok(rec)
    }

    /// Whether `other` describes the same population of runs: equal
    /// kind, scale, and workload fingerprint. Only comparable runs feed
    /// an audit baseline.
    pub fn comparable_to(&self, other: &RunRecord) -> bool {
        self.kind == other.kind && self.scale == other.scale && self.workload == other.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut r = RunRecord::new("repro-all", "repro", "0.1.0", 42, "quick");
        r.unix_secs = 1_754_650_000;
        r.push_metric("total_wall_secs", 1.25).unwrap();
        r.push_metric("wall_secs.F9", 0.625).unwrap();
        r.push_note(
            "cache",
            "cache: 0 hits, 0 invalidated, 24 misses, 24 stored",
        );
        r
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let r = sample();
        let decoded = RunRecord::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(decoded, r);
        // Bit-exact metrics, not lossy decimal.
        assert_eq!(
            decoded.metrics["wall_secs.F9"].to_bits(),
            0.625f64.to_bits()
        );
    }

    #[test]
    fn truncated_and_tampered_records_are_corrupt() {
        let text = sample().encode().unwrap();
        let truncated = &text[..text.len() - 10];
        assert!(matches!(
            RunRecord::decode(truncated),
            Err(SentinelError::Corrupt(_))
        ));
        let tampered = text.replace("seed 42", "seed 43");
        assert!(matches!(
            RunRecord::decode(&tampered),
            Err(SentinelError::Corrupt(_))
        ));
        assert!(matches!(
            RunRecord::decode("not a record"),
            Err(SentinelError::Corrupt(_))
        ));
    }

    #[test]
    fn newer_record_schema_is_refused_not_misread() {
        let text = sample().encode().unwrap().replace("schema 1", "schema 99");
        assert!(matches!(
            RunRecord::decode(&text),
            Err(SentinelError::SchemaTooNew { found: 99, .. })
        ));
    }

    #[test]
    fn manifest_ingestion_respects_schema_versions() {
        let mut m = RunManifest::new("repro", "0.1.0", 7, "quick");
        m.total_wall_secs = 2.0;
        m.push_experiment("T1", 0.5, 3);
        let rec = RunRecord::from_manifest(&m, "repro-all", "all").unwrap();
        assert_eq!(rec.seed, 7);
        assert_eq!(rec.metrics["total_wall_secs"], 2.0);
        assert_eq!(rec.metrics["wall_secs.T1"], 0.5);
        assert_eq!(rec.notes["artifact_count"], "3");

        // Legacy (pre-versioning) manifests upgrade with a note.
        m.schema_version = 0;
        let legacy = RunRecord::from_manifest(&m, "repro-all", "all").unwrap();
        assert!(legacy.notes["manifest_schema"].contains("legacy"));

        // Future manifests are refused.
        m.schema_version = MANIFEST_SCHEMA_VERSION + 1;
        assert!(matches!(
            RunRecord::from_manifest(&m, "repro-all", "all"),
            Err(SentinelError::SchemaTooNew { .. })
        ));
    }

    #[test]
    fn non_finite_metrics_are_rejected_at_the_boundary() {
        let mut r = RunRecord::new("bench", "bench", "0.1.0", 0, "quick");
        assert!(r.push_metric("m", f64::NAN).is_err());
        assert!(r.push_metric("m", f64::INFINITY).is_err());
        assert!(r.push_metric("m", 1.0).is_ok());
    }

    #[test]
    fn workload_fingerprints_are_order_insensitive() {
        let a = workload_fingerprint(Some(&["F9".to_string(), "T1".to_string()]));
        let b = workload_fingerprint(Some(&["T1".to_string(), "F9".to_string()]));
        assert_eq!(a, b);
        assert_ne!(a, workload_fingerprint(Some(&["T1".to_string()])));
        assert_eq!(workload_fingerprint(None), "all");
        assert!(a.starts_with("sel-"));
    }

    #[test]
    fn comparability_requires_kind_scale_and_workload() {
        let base = sample();
        let mut other = sample();
        assert!(base.comparable_to(&other));
        other.scale = "paper".to_string();
        assert!(!base.comparable_to(&other));
        other = sample();
        other.workload = "sel-0000000000000000".to_string();
        assert!(!base.comparable_to(&other));
        other = sample();
        other.seed = 99; // different seed is still comparable
        assert!(base.comparable_to(&other));
    }
}
