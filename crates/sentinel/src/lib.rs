//! # sentinel — the pipeline that watches its own performance
//!
//! The paper's thesis is that performance results drift and that only
//! longitudinal, robust statistics catch it. This crate turns that lens
//! back on the reproduction itself: every `repro all`, campaign, and
//! bench run appends one [`RunRecord`] to a durable on-disk history, and
//! each new run is **audited** against that history before anyone trusts
//! it.
//!
//! Three layers:
//!
//! * **History** ([`history::HistoryStore`]) — an append-only directory
//!   of per-run records. Writes are crash-safe (temp file + hard-link
//!   publish, same discipline as the artifact cache) and every record is
//!   checksummed, so a reader either gets a whole record or skips it.
//! * **Audit** ([`audit`]) — scores the newest run's metrics against the
//!   matching history with median/MAD robust z-scores
//!   ([`varstats::robust`]). Never mean ± stddev: one historic outlier
//!   must not mask a real regression. Below a configurable warm-up the
//!   audit always passes — you cannot flag a regression against a
//!   history you don't have.
//! * **Online change-points** — each audited metric series runs through
//!   [`varstats::online::OnlineCusum`], the incremental robust CUSUM, so
//!   a step change is reported with the index where the level shifted,
//!   not just "this run looks slow".
//!
//! The `repro sentinel` subcommands (`record`, `audit`, `watch`,
//! `report`, `clear`) wire this into the CLI; `repro all` and `campaign`
//! record automatically. `repro sentinel audit` exits non-zero on a
//! flagged regression, which is what CI consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod criterion;
pub mod history;
pub mod record;
pub mod report;

pub use audit::{audit, AuditConfig, AuditReport, MetricFinding, MetricStatus};
pub use history::{HistoryStore, LoadedHistory};
pub use record::{RunRecord, RECORD_SCHEMA_VERSION};

use std::fmt;

/// Errors produced by the sentinel.
#[derive(Debug)]
pub enum SentinelError {
    /// An I/O error while reading or writing history.
    Io(std::io::Error),
    /// A record failed to decode (with the reason).
    Corrupt(String),
    /// A manifest declares a schema version newer than this sentinel
    /// understands; refusing beats silently misreading it.
    SchemaTooNew {
        /// Version found in the manifest.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// A statistics routine rejected the data.
    Stats(varstats::StatsError),
    /// A configuration value was out of domain.
    InvalidConfig(String),
}

impl fmt::Display for SentinelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentinelError::Io(e) => write!(f, "history I/O error: {e}"),
            SentinelError::Corrupt(why) => write!(f, "corrupt record: {why}"),
            SentinelError::SchemaTooNew { found, supported } => write!(
                f,
                "manifest schema version {found} is newer than supported {supported}; \
                 upgrade the sentinel before ingesting this run"
            ),
            SentinelError::Stats(e) => write!(f, "statistics error: {e}"),
            SentinelError::InvalidConfig(why) => write!(f, "invalid config: {why}"),
        }
    }
}

impl std::error::Error for SentinelError {}

impl From<std::io::Error> for SentinelError {
    fn from(e: std::io::Error) -> Self {
        SentinelError::Io(e)
    }
}

impl From<varstats::StatsError> for SentinelError {
    fn from(e: varstats::StatsError) -> Self {
        SentinelError::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SentinelError>;

/// FNV-1a, 64-bit — the workspace's standard tiny stable digest, used
/// here to checksum record payloads and fingerprint workload subsets.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
