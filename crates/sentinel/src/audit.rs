//! Scoring a new run against its history.
//!
//! For every metric the newest record carries, the auditor builds the
//! series of prior values from *comparable* records (same kind, scale,
//! and workload fingerprint — see [`RunRecord::comparable_to`]) and
//! scores the new value two ways:
//!
//! * **Robust z-score** ([`varstats::robust::robust_zscore`]) against
//!   the prior series: median-centered, MAD-scaled, so one historic
//!   outlier can neither hide a regression nor fabricate one. Metrics
//!   are lower-is-better; by default only *upward* deviations flag.
//! * **Online CUSUM** ([`varstats::online::OnlineCusum`]) over the
//!   whole series including the new value: a slow drift that no single
//!   run makes suspicious still trips the accumulated statistic, and
//!   the alarm reports the index where the regime shifted.
//!
//! With fewer than [`AuditConfig::min_history`] comparable priors a
//! metric is in **warm-up** and never flags — the first runs on a new
//! machine or workload build the baseline instead of failing against
//! an empty one. Warm-up is per metric, so a newly added metric warms
//! up without blocking ones with established baselines.

use crate::record::RunRecord;
use crate::{Result, SentinelError};
use varstats::online::{OnlineCusum, OnlineCusumConfig};
use varstats::robust::robust_zscore;

/// Tuning for [`audit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Robust z-score above which a metric flags. The default, 4 robust
    /// σ, is deliberately far out: the paper's data shows benchmark
    /// noise is heavy-tailed, and a sentinel that cries wolf gets
    /// disabled.
    pub max_z: f64,
    /// Comparable priors a metric needs before it can flag. Must be
    /// ≥ 2 (the robust baseline needs at least two points).
    pub min_history: usize,
    /// When `true`, downward deviations (suspicious speedups) flag
    /// too. Off by default: metrics are lower-is-better and a speedup
    /// is not a CI failure, but `repro sentinel audit --two-sided`
    /// surfaces them for humans.
    pub two_sided: bool,
    /// Drift and threshold for the online change-point pass. The
    /// warm-up is overridden to `min_history` so both passes come
    /// alive together.
    pub cusum: OnlineCusumConfig,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            max_z: 4.0,
            min_history: 4,
            two_sided: false,
            cusum: OnlineCusumConfig::default(),
        }
    }
}

/// How one metric fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricStatus {
    /// Within the robust envelope of its history.
    Ok,
    /// Outside the envelope: this run regressed the metric (or, under
    /// `two_sided`, deviated in either direction).
    Flagged,
    /// Not enough comparable history yet; never flags.
    WarmUp,
}

/// The audit's verdict on one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFinding {
    /// Metric name.
    pub name: String,
    /// Value in the audited run.
    pub value: f64,
    /// Median of the comparable prior values (NaN during warm-up with
    /// no priors).
    pub baseline: f64,
    /// Robust z-score of `value` against the priors (NaN during
    /// warm-up; ±∞ for a deviation from a constant history).
    pub z: f64,
    /// Number of comparable prior values the score stands on.
    pub priors: usize,
    /// Verdict.
    pub status: MetricStatus,
    /// Change-point index the online CUSUM reported while scanning
    /// this metric's series (priors followed by the audited value;
    /// index counts into that series). `Some` only when the detector
    /// alarmed on the *audited* value — an old, already-absorbed shift
    /// is history, not news.
    pub changepoint: Option<usize>,
}

/// Result of auditing one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Per-metric findings, in metric name order.
    pub findings: Vec<MetricFinding>,
    /// Comparable prior records the audit ran against.
    pub history_len: usize,
    /// Configuration used.
    pub config: AuditConfig,
}

impl AuditReport {
    /// Names of flagged metrics, in name order.
    pub fn flagged(&self) -> Vec<&str> {
        self.findings
            .iter()
            .filter(|f| f.status == MetricStatus::Flagged)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Whether the run regressed: any metric flagged.
    pub fn regression(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.status == MetricStatus::Flagged)
    }

    /// Whether every metric is still warming up.
    pub fn all_warm_up(&self) -> bool {
        self.findings
            .iter()
            .all(|f| f.status == MetricStatus::WarmUp)
    }
}

/// Audits `latest` against `history` (records in append order; only
/// those comparable to `latest` are used — callers can pass the whole
/// store).
///
/// # Errors
///
/// Returns an error on an invalid configuration or a non-finite metric
/// value (the record codec rejects those at write time, so a store
/// written by this crate never triggers it).
pub fn audit(
    history: &[RunRecord],
    latest: &RunRecord,
    config: &AuditConfig,
) -> Result<AuditReport> {
    if config.min_history < 2 {
        return Err(SentinelError::InvalidConfig(format!(
            "min_history must be at least 2, got {}",
            config.min_history
        )));
    }
    if !(config.max_z > 0.0 && config.max_z.is_finite()) {
        return Err(SentinelError::InvalidConfig(format!(
            "max_z must be finite and positive, got {}",
            config.max_z
        )));
    }
    let cusum_config = OnlineCusumConfig {
        warm_up: config.min_history,
        max_reference: config.cusum.max_reference.max(config.min_history),
        ..config.cusum
    };
    // Fail fast on a bad CUSUM config before scoring anything.
    OnlineCusum::new(cusum_config)?;

    let priors: Vec<&RunRecord> = history.iter().filter(|r| r.comparable_to(latest)).collect();
    let mut findings = Vec::with_capacity(latest.metrics.len());
    for (name, &value) in &latest.metrics {
        // A prior that lacks this metric contributes nothing — new
        // metrics warm up individually.
        let series: Vec<f64> = priors
            .iter()
            .filter_map(|r| r.metrics.get(name).copied())
            .collect();
        if series.len() < config.min_history {
            findings.push(MetricFinding {
                name: name.clone(),
                value,
                baseline: if series.len() < 2 {
                    series.first().copied().unwrap_or(f64::NAN)
                } else {
                    varstats::robust::robust_location_scale(&series)?.0
                },
                z: f64::NAN,
                priors: series.len(),
                status: MetricStatus::WarmUp,
                changepoint: None,
            });
            continue;
        }
        let z = robust_zscore(&series, value)?;
        let exceeded = if config.two_sided { z.abs() } else { z };
        let status = if exceeded > config.max_z {
            MetricStatus::Flagged
        } else {
            MetricStatus::Ok
        };
        // Online pass over priors + the audited value. Only an alarm
        // fired by the final push is attributed to this run.
        let mut detector = OnlineCusum::new(cusum_config)?;
        for &x in &series {
            detector.push(x)?;
        }
        let changepoint = detector.push(value)?;
        findings.push(MetricFinding {
            name: name.clone(),
            value,
            baseline: varstats::robust::robust_location_scale(&series)?.0,
            z,
            priors: series.len(),
            status,
            changepoint,
        });
    }
    Ok(AuditReport {
        findings,
        history_len: priors.len(),
        config: *config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64, wall: f64) -> RunRecord {
        let mut r = RunRecord::new("repro-all", "repro", "0.1.0", seed, "quick");
        r.unix_secs = seed;
        r.push_metric("total_wall_secs", wall).unwrap();
        r
    }

    fn history(walls: &[f64]) -> Vec<RunRecord> {
        walls
            .iter()
            .enumerate()
            .map(|(i, &w)| run(i as u64, w))
            .collect()
    }

    #[test]
    fn stable_history_and_stable_run_pass() {
        let h = history(&[1.0, 1.05, 0.98, 1.02, 1.01]);
        let report = audit(&h, &run(9, 1.03), &AuditConfig::default()).unwrap();
        assert!(!report.regression());
        let f = &report.findings[0];
        assert_eq!(f.status, MetricStatus::Ok);
        assert_eq!(f.priors, 5);
        assert!(f.z.abs() < 2.0, "z {}", f.z);
        assert_eq!(f.changepoint, None);
    }

    #[test]
    fn gross_regression_flags_with_changepoint() {
        let h = history(&[1.0, 1.05, 0.98, 1.02, 1.01, 0.99]);
        let report = audit(&h, &run(9, 5.0), &AuditConfig::default()).unwrap();
        assert!(report.regression());
        assert_eq!(report.flagged(), ["total_wall_secs"]);
        let f = &report.findings[0];
        assert!(f.z > 4.0, "z {}", f.z);
        // The online detector pins the shift to the audited point,
        // index 6 of the 7-point series.
        assert_eq!(f.changepoint, Some(6));
    }

    #[test]
    fn speedups_pass_one_sided_but_flag_two_sided() {
        let h = history(&[1.0, 1.05, 0.98, 1.02, 1.01, 0.99]);
        let fast = run(9, 0.1);
        let report = audit(&h, &fast, &AuditConfig::default()).unwrap();
        assert!(!report.regression(), "a speedup is not a regression");
        let two_sided = AuditConfig {
            two_sided: true,
            ..Default::default()
        };
        let report = audit(&h, &fast, &two_sided).unwrap();
        assert!(report.regression());
    }

    #[test]
    fn warm_up_never_flags() {
        let config = AuditConfig::default(); // min_history 4
        for n in 0..4 {
            let h = history(&vec![1.0; n]);
            let report = audit(&h, &run(9, 1000.0), &config).unwrap();
            assert!(!report.regression(), "warm-up with {n} priors must pass");
            assert!(report.all_warm_up());
            assert_eq!(report.findings[0].priors, n);
        }
        // One more prior crosses the threshold and the same run flags.
        let report = audit(&history(&[1.0; 4]), &run(9, 1000.0), &config).unwrap();
        assert!(report.regression());
    }

    #[test]
    fn incomparable_records_are_excluded_from_the_baseline() {
        let mut h = history(&[1.0, 1.01, 0.99, 1.02]);
        // Same metric values but a different scale: not this population.
        let mut other = run(50, 1.0);
        other.scale = "paper".to_string();
        h.push(other.clone());
        h.push(other);
        let report = audit(&h, &run(9, 1.0), &AuditConfig::default()).unwrap();
        assert_eq!(report.history_len, 4);
        assert_eq!(report.findings[0].priors, 4);
    }

    #[test]
    fn constant_history_equal_passes_deviation_flags() {
        let h = history(&[2.0; 6]);
        let same = audit(&h, &run(9, 2.0), &AuditConfig::default()).unwrap();
        assert!(!same.regression());
        assert_eq!(same.findings[0].z, 0.0);
        let worse = audit(&h, &run(9, 2.0001), &AuditConfig::default()).unwrap();
        assert!(worse.regression());
        assert_eq!(worse.findings[0].z, f64::INFINITY);
    }

    #[test]
    fn metrics_missing_from_history_warm_up_individually() {
        let mut h = history(&[1.0, 1.01, 0.99, 1.02, 1.0]);
        let mut latest = run(9, 1.0);
        latest.push_metric("wall_secs.NEW", 10.0).unwrap();
        let report = audit(&h, &latest, &AuditConfig::default()).unwrap();
        let by_name = |n: &str| report.findings.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("total_wall_secs").status, MetricStatus::Ok);
        assert_eq!(by_name("wall_secs.NEW").status, MetricStatus::WarmUp);
        assert!(!report.regression());
        // Findings are in metric name order.
        let names: Vec<&str> = report.findings.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["total_wall_secs", "wall_secs.NEW"]);
        // Once the new metric has history, it audits like any other.
        for r in h.iter_mut() {
            r.push_metric("wall_secs.NEW", 10.0).unwrap();
        }
        let report = audit(&h, &latest, &AuditConfig::default()).unwrap();
        assert_eq!(by_name("wall_secs.NEW").name, "wall_secs.NEW");
        assert_eq!(
            report
                .findings
                .iter()
                .find(|f| f.name == "wall_secs.NEW")
                .unwrap()
                .status,
            MetricStatus::Ok
        );
    }

    #[test]
    fn slow_drift_trips_the_online_detector() {
        // A sustained +2-robust-σ shift: each run clears the single-run
        // test (z ≈ 2 < max_z 4), but the CUSUM accumulates ~1.5 per
        // point and crosses h = 6 exactly when the audited value lands.
        let mut walls: Vec<f64> = (0..12).map(|i| 1.0 + 0.01 * (i % 3) as f64).collect();
        walls.extend([1.04; 3]);
        let h = history(&walls);
        let report = audit(&h, &run(99, 1.04), &AuditConfig::default()).unwrap();
        let f = &report.findings[0];
        assert_eq!(
            f.status,
            MetricStatus::Ok,
            "no single run is suspicious on its own: z {}",
            f.z
        );
        assert!(f.z < 4.0, "z {}", f.z);
        // The excursion-start estimator dates the change from where the
        // alarming statistic left zero — at or just before the true
        // shift at index 12.
        assert!(
            matches!(f.changepoint, Some(11 | 12)),
            "accumulated drift should alarm near index 12: {report:?}"
        );
    }

    #[test]
    fn config_validation() {
        let h = history(&[1.0; 5]);
        let latest = run(9, 1.0);
        let bad_history = AuditConfig {
            min_history: 1,
            ..Default::default()
        };
        assert!(audit(&h, &latest, &bad_history).is_err());
        let bad_z = AuditConfig {
            max_z: 0.0,
            ..Default::default()
        };
        assert!(audit(&h, &latest, &bad_z).is_err());
    }
}
