//! Ingesting Criterion benchmark output into the history.
//!
//! Criterion writes `target/criterion/<bench>/new/estimates.json` after
//! every run. The sentinel wants exactly one number per bench — the
//! median point estimate, in nanoseconds — and must not grow a JSON
//! dependency for it (the sentinel sits below `analysis` in the crate
//! graph), so this module scans the two-level key path
//! `"median" → "point_estimate"` by hand. The scan is deliberately
//! narrow: anything unexpected yields no metric rather than a wrong
//! one.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Extracts `"median": { ... "point_estimate": <number> ... }` from a
/// Criterion estimates file. Returns `None` when the shape is not
/// recognized.
pub fn median_point_estimate(json: &str) -> Option<f64> {
    let median_key = json.find("\"median\"")?;
    let object_start = json[median_key..].find('{')? + median_key;
    // The median object ends at the matching brace; Criterion estimates
    // contain no nested objects below the estimate level other than
    // "confidence_interval", so track depth to find the real end.
    let mut depth = 0usize;
    let mut object_end = object_start;
    for (i, b) in json[object_start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    object_end = object_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    if object_end == object_start {
        return None;
    }
    let object = &json[object_start..=object_end];
    // point_estimate also appears inside confidence_interval objects;
    // take the one at depth 1 of the median object.
    let mut search_from = 0usize;
    loop {
        let rel = object[search_from..].find("\"point_estimate\"")?;
        let abs = search_from + rel;
        let depth = object[..abs].bytes().fold(0usize, |d, b| match b {
            b'{' => d + 1,
            b'}' => d.saturating_sub(1),
            _ => d,
        });
        if depth == 1 {
            let after_colon = object[abs..].find(':')? + abs + 1;
            let number: String = object[after_colon..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                .collect();
            return number.parse::<f64>().ok().filter(|v| v.is_finite());
        }
        search_from = abs + 1;
    }
}

/// Walks a Criterion output directory (`target/criterion`) and returns
/// `bench.<name>.median_ns` metrics for every
/// `<name>/new/estimates.json` found, in name order. Benches whose
/// estimates cannot be parsed are silently skipped — a half-written
/// file must not block recording the rest.
pub fn criterion_medians(dir: &Path) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = match path.file_name() {
            Some(n) => n.to_string_lossy().into_owned(),
            None => continue,
        };
        if name == "report" {
            continue; // Criterion's HTML summary, not a bench
        }
        let estimates = path.join("new").join("estimates.json");
        let Ok(json) = fs::read_to_string(&estimates) else {
            continue;
        };
        if let Some(median) = median_point_estimate(&json) {
            // Metric names must be whitespace-free for the record codec.
            let clean = name.replace(char::is_whitespace, "_");
            out.insert(format!("bench.{clean}.median_ns"), median);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "mean": {"confidence_interval": {"confidence_level": 0.95, "lower_bound": 100.0, "upper_bound": 120.0}, "point_estimate": 110.0, "standard_error": 5.0},
        "median": {"confidence_interval": {"confidence_level": 0.95, "lower_bound": 95.5, "upper_bound": 105.5}, "point_estimate": 101.25, "standard_error": 2.5},
        "std_dev": {"point_estimate": 9.0}
    }"#;

    #[test]
    fn extracts_the_median_point_estimate_not_the_ci_bound() {
        assert_eq!(median_point_estimate(SAMPLE), Some(101.25));
    }

    #[test]
    fn unrecognized_shapes_yield_none() {
        assert_eq!(median_point_estimate("{}"), None);
        assert_eq!(median_point_estimate("not json"), None);
        assert_eq!(median_point_estimate("{\"median\": 5}"), None);
        assert_eq!(
            median_point_estimate("{\"median\": {\"point_estimate\": \"nope\"}}"),
            None
        );
    }

    #[test]
    fn scans_a_criterion_directory_layout() {
        let dir = std::env::temp_dir().join(format!(
            "sentinel-criterion-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        for (bench, estimate) in [("confirm_quick", "11.5"), ("pelt_mean", "220.75")] {
            let new = dir.join(bench).join("new");
            fs::create_dir_all(&new).unwrap();
            fs::write(
                new.join("estimates.json"),
                format!("{{\"median\": {{\"point_estimate\": {estimate}}}}}"),
            )
            .unwrap();
        }
        // Criterion's aggregate report dir and a torn bench are skipped.
        fs::create_dir_all(dir.join("report")).unwrap();
        let torn = dir.join("torn_bench").join("new");
        fs::create_dir_all(&torn).unwrap();
        fs::write(torn.join("estimates.json"), "{\"median\": {").unwrap();

        let medians = criterion_medians(&dir);
        let names: Vec<&str> = medians.keys().map(String::as_str).collect();
        assert_eq!(
            names,
            ["bench.confirm_quick.median_ns", "bench.pelt_mean.median_ns"]
        );
        assert_eq!(medians["bench.confirm_quick.median_ns"], 11.5);
        assert_eq!(medians["bench.pelt_mean.median_ns"], 220.75);
        assert_eq!(criterion_medians(&dir.join("missing")).len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
