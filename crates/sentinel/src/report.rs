//! Plain-text rendering of histories and audits.
//!
//! The sentinel sits below the `analysis` crate in the dependency
//! graph, so it carries its own small fixed-width renderer instead of
//! reusing the CLI's table type. Output is deterministic for a given
//! history: no timestamps are printed except the ones stored in the
//! records themselves.

use crate::audit::{AuditReport, MetricStatus};
use crate::history::LoadedHistory;
use crate::record::RunRecord;
use varstats::online::{online_changepoints, OnlineCusumConfig};

/// Renders one line per finding:
/// `flag? name value baseline z priors [changepoint]`.
pub fn render_audit(report: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sentinel audit: {} comparable prior run(s), max_z {}\n",
        report.history_len, report.config.max_z
    ));
    let name_width = report
        .findings
        .iter()
        .map(|f| f.name.len())
        .max()
        .unwrap_or(6)
        .max(6);
    for f in &report.findings {
        let mark = match f.status {
            MetricStatus::Flagged => "FLAG",
            MetricStatus::Ok => "  ok",
            MetricStatus::WarmUp => "warm",
        };
        let z = if f.z.is_nan() {
            "    -".to_string()
        } else {
            format!("{:+.2}", f.z)
        };
        let cp = match f.changepoint {
            Some(i) => format!("  change-point @ {i}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{mark}  {:<name_width$}  value {:>12.6}  baseline {:>12.6}  z {z:>8}  n {:>3}{cp}\n",
            f.name, f.value, f.baseline, f.priors
        ));
    }
    match report.flagged().as_slice() {
        [] if report.all_warm_up() && !report.findings.is_empty() => {
            out.push_str("verdict: warm-up (history below min_history; nothing can flag)\n");
        }
        [] => out.push_str("verdict: pass\n"),
        flagged => {
            out.push_str(&format!("verdict: REGRESSION in {}\n", flagged.join(", ")));
        }
    }
    out
}

/// Renders the stored history per metric: every comparable run's value
/// in sequence order, with change-points from a fresh online scan
/// marked inline. `focus` restricts rendering to records comparable to
/// the given one (pass the latest record); `None` renders every record
/// grouped by population.
pub fn render_history(
    loaded: &LoadedHistory,
    focus: Option<&RunRecord>,
    cusum: OnlineCusumConfig,
) -> String {
    let mut out = String::new();
    if loaded.records.is_empty() {
        out.push_str("sentinel history: empty\n");
        return out;
    }
    out.push_str(&format!(
        "sentinel history: {} record(s), {} corrupt file(s) skipped\n",
        loaded.records.len(),
        loaded.corrupt
    ));
    // Populations, in first-seen order.
    let mut groups: Vec<(&RunRecord, Vec<&(u64, RunRecord)>)> = Vec::new();
    for entry in &loaded.records {
        if let Some(f) = focus {
            if !entry.1.comparable_to(f) {
                continue;
            }
        }
        match groups
            .iter_mut()
            .find(|(probe, _)| probe.comparable_to(&entry.1))
        {
            Some((_, members)) => members.push(entry),
            None => groups.push((&entry.1, vec![entry])),
        }
    }
    for (probe, members) in &groups {
        out.push_str(&format!(
            "\npopulation kind={} scale={} workload={} ({} run(s))\n",
            probe.kind,
            probe.scale,
            probe.workload,
            members.len()
        ));
        // Metric names from the newest member: the current contract.
        let latest = &members[members.len() - 1].1;
        for name in latest.metrics.keys() {
            let series: Vec<f64> = members
                .iter()
                .filter_map(|(_, r)| r.metrics.get(name).copied())
                .collect();
            let changepoints = online_changepoints(&series, cusum).unwrap_or_default();
            out.push_str(&format!("  metric {name}"));
            if !changepoints.is_empty() {
                out.push_str(&format!("  change-points at {changepoints:?}"));
            }
            out.push('\n');
            let mut si = 0usize;
            for (seq, r) in members {
                if let Some(v) = r.metrics.get(name) {
                    let mark = if changepoints.contains(&si) {
                        " <-- change-point"
                    } else {
                        ""
                    };
                    out.push_str(&format!("    #{seq:<6} seed {:<12} {v}{mark}\n", r.seed));
                    si += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{audit, AuditConfig};
    use crate::history::LoadedHistory;

    fn run(seed: u64, wall: f64) -> RunRecord {
        let mut r = RunRecord::new("repro-all", "repro", "0.1.0", seed, "quick");
        r.push_metric("total_wall_secs", wall).unwrap();
        r
    }

    #[test]
    fn audit_rendering_names_the_flagged_metric() {
        let history: Vec<RunRecord> = (0..6)
            .map(|i| run(i, 1.0 + 0.01 * (i % 3) as f64))
            .collect();
        let report = audit(&history, &run(9, 50.0), &AuditConfig::default()).unwrap();
        let text = render_audit(&report);
        assert!(
            text.contains("verdict: REGRESSION in total_wall_secs"),
            "{text}"
        );
        assert!(text.contains("FLAG"), "{text}");
        // The excursion-start estimator may date the change a couple of
        // jitter points before the audited index 6.
        assert!(text.contains("change-point @ "), "{text}");

        let pass = audit(&history, &run(9, 1.005), &AuditConfig::default()).unwrap();
        let text = render_audit(&pass);
        assert!(text.contains("verdict: pass"), "{text}");

        let warm = audit(&history[..2], &run(9, 50.0), &AuditConfig::default()).unwrap();
        let text = render_audit(&warm);
        assert!(text.contains("verdict: warm-up"), "{text}");
    }

    #[test]
    fn history_rendering_groups_populations_and_marks_changepoints() {
        let mut records: Vec<(u64, RunRecord)> = (0..8)
            .map(|i| {
                (
                    i + 1,
                    // A constant baseline keeps the CUSUM statistic at
                    // exactly zero until the step, so the scan reports
                    // the single true change-point at index 6.
                    run(i, if i < 6 { 1.0 } else { 9.0 }),
                )
            })
            .collect();
        let mut paper = run(99, 1.0);
        paper.scale = "paper".to_string();
        records.push((9, paper));
        let loaded = LoadedHistory {
            records,
            corrupt: 1,
        };
        let cusum = OnlineCusumConfig {
            warm_up: 2,
            ..Default::default()
        };
        let text = render_history(&loaded, None, cusum);
        assert!(
            text.contains("8 record(s)") || text.contains("9 record(s)"),
            "{text}"
        );
        assert!(text.contains("1 corrupt file(s) skipped"), "{text}");
        assert!(text.contains("scale=quick"), "{text}");
        assert!(text.contains("scale=paper"), "{text}");
        assert!(text.contains("change-points at [6]"), "{text}");
        assert!(text.contains("<-- change-point"), "{text}");

        // Focus drops the paper-scale population.
        let focused = render_history(&loaded, Some(&run(0, 1.0)), cusum);
        assert!(!focused.contains("scale=paper"), "{focused}");
        let empty = render_history(&LoadedHistory::default(), None, cusum);
        assert!(empty.contains("empty"), "{empty}");
    }
}
