//! The durable append-only run-history store.
//!
//! One directory, one file per record, named by an eight-digit sequence
//! number (`00000001.rec`, `00000002.rec`, …). Appending is crash-safe:
//! the record is written and fsynced to a temp file, then *published*
//! with a hard link to its final name — link either succeeds atomically
//! or fails because a concurrent writer took the sequence number, in
//! which case we retry with the next one. A crash at any point leaves
//! either a complete published record or an orphan temp file the loader
//! ignores; there is no state in which a reader sees half a record with
//! a valid name.

use crate::record::RunRecord;
use crate::{Result, SentinelError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process;

/// Extension of published record files.
const RECORD_EXT: &str = "rec";

/// Everything a load pass found: decoded records (in sequence order)
/// and how many files it had to skip.
#[derive(Debug, Clone, Default)]
pub struct LoadedHistory {
    /// Decoded records with their sequence numbers, ascending.
    pub records: Vec<(u64, RunRecord)>,
    /// Files with a `.rec` name that failed to decode (truncated write
    /// from a crash, bit rot, schema from the future). Skipped, never
    /// trusted.
    pub corrupt: usize,
}

impl LoadedHistory {
    /// The records alone, still in sequence order.
    pub fn into_records(self) -> Vec<RunRecord> {
        self.records.into_iter().map(|(_, r)| r).collect()
    }
}

/// Handle to one history directory.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    dir: PathBuf,
}

impl HistoryStore {
    /// Opens (without creating) a store at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        HistoryStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn record_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{seq:08}.{RECORD_EXT}"))
    }

    /// Highest published sequence number, 0 when the store is empty.
    fn last_seq(&self) -> Result<u64> {
        let mut last = 0u64;
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(&format!(".{RECORD_EXT}")) {
                if let Ok(seq) = stem.parse::<u64>() {
                    last = last.max(seq);
                }
            }
        }
        Ok(last)
    }

    /// Appends one record, returning its sequence number.
    ///
    /// Write discipline: encode → temp file in the same directory →
    /// flush + `sync_all` → `hard_link(temp, final)` → unlink temp. The
    /// link is the commit point. `EEXIST` means another writer (or a
    /// previous crashed attempt) owns that sequence number — retry with
    /// the next, same as the artifact cache's publish loop.
    pub fn append(&self, record: &RunRecord) -> Result<u64> {
        let encoded = record.encode()?;
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(
            ".tmp-{}-{:08x}",
            process::id(),
            crate::fnv1a64(encoded.as_bytes())
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(encoded.as_bytes())?;
            f.sync_all()?;
        }
        let mut seq = self.last_seq()? + 1;
        loop {
            match fs::hard_link(&tmp, self.record_path(seq)) {
                Ok(()) => break,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    seq += 1;
                    if seq > u64::from(u32::MAX) {
                        let _ = fs::remove_file(&tmp);
                        return Err(SentinelError::Corrupt(
                            "sequence space exhausted".to_string(),
                        ));
                    }
                }
                Err(e) => {
                    let _ = fs::remove_file(&tmp);
                    return Err(e.into());
                }
            }
        }
        let _ = fs::remove_file(&tmp);
        Ok(seq)
    }

    /// Loads every readable record, ascending by sequence number.
    /// Corrupt files are counted and skipped — a crash mid-`append` or a
    /// damaged disk must never make the whole history unreadable.
    pub fn load(&self) -> Result<LoadedHistory> {
        let mut out = LoadedHistory::default();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            let name = match path.file_name() {
                Some(n) => n.to_string_lossy().into_owned(),
                None => continue,
            };
            let seq = match name
                .strip_suffix(&format!(".{RECORD_EXT}"))
                .and_then(|stem| stem.parse::<u64>().ok())
            {
                Some(seq) => seq,
                None => continue, // temp files, strangers: not ours to judge
            };
            match fs::read_to_string(&path)
                .map_err(SentinelError::from)
                .and_then(|text| RunRecord::decode(&text))
            {
                Ok(rec) => out.records.push((seq, rec)),
                Err(_) => out.corrupt += 1,
            }
        }
        out.records.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Removes every record file (and stray temp files), returning how
    /// many records were deleted. Like `repro cache clear`, only files
    /// the store itself writes are touched; anything else in the
    /// directory survives, and the directory itself is left in place.
    pub fn clear(&self) -> Result<usize> {
        let mut removed = 0usize;
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            let name = match path.file_name() {
                Some(n) => n.to_string_lossy().into_owned(),
                None => continue,
            };
            let is_record = name.ends_with(&format!(".{RECORD_EXT}"))
                && name
                    .strip_suffix(&format!(".{RECORD_EXT}"))
                    .is_some_and(|stem| stem.parse::<u64>().is_ok());
            let is_temp = name.starts_with(".tmp-");
            if is_record || is_temp {
                fs::remove_file(&path)?;
                if is_record {
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> HistoryStore {
        let dir = std::env::temp_dir().join(format!(
            "sentinel-history-{tag}-{}-{:?}",
            process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        HistoryStore::new(dir)
    }

    fn record(seed: u64, wall: f64) -> RunRecord {
        let mut r = RunRecord::new("repro-all", "repro", "0.1.0", seed, "quick");
        r.push_metric("total_wall_secs", wall).unwrap();
        r
    }

    #[test]
    fn append_load_round_trips_in_order() {
        let store = temp_store("roundtrip");
        assert_eq!(
            store.load().unwrap().records.len(),
            0,
            "empty store reads empty"
        );
        assert_eq!(store.append(&record(1, 1.0)).unwrap(), 1);
        assert_eq!(store.append(&record(2, 1.1)).unwrap(), 2);
        assert_eq!(store.append(&record(3, 1.2)).unwrap(), 3);
        let loaded = store.load().unwrap();
        assert_eq!(loaded.corrupt, 0);
        let seeds: Vec<u64> = loaded.records.iter().map(|(_, r)| r.seed).collect();
        assert_eq!(seeds, [1, 2, 3]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_and_foreign_files_do_not_poison_the_history() {
        let store = temp_store("corrupt");
        store.append(&record(1, 1.0)).unwrap();
        store.append(&record(2, 1.1)).unwrap();
        // A crash mid-write: temp file with partial content.
        fs::write(store.dir().join(".tmp-999-deadbeef"), "partial").unwrap();
        // A torn record: valid name, truncated body.
        let text = record(3, 1.2).encode().unwrap();
        fs::write(store.dir().join("00000003.rec"), &text[..text.len() / 2]).unwrap();
        // A foreign file.
        fs::write(store.dir().join("README"), "not a record").unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.corrupt, 1);
        // And appending continues past the torn record's number.
        let seq = store.append(&record(4, 1.3)).unwrap();
        assert_eq!(seq, 4);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sequence_collisions_retry_instead_of_overwriting() {
        let store = temp_store("collide");
        store.append(&record(1, 1.0)).unwrap();
        // Simulate a racing writer having claimed seq 2 already.
        fs::write(store.dir().join("00000002.rec"), "squatter").unwrap();
        let seq = store.append(&record(2, 1.1)).unwrap();
        assert_eq!(seq, 3, "append must step over the squatter, not clobber it");
        assert_eq!(
            fs::read_to_string(store.dir().join("00000002.rec")).unwrap(),
            "squatter"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn clear_removes_only_record_and_temp_files() {
        let store = temp_store("clear");
        store.append(&record(1, 1.0)).unwrap();
        store.append(&record(2, 1.1)).unwrap();
        fs::write(store.dir().join(".tmp-1-abc"), "orphan").unwrap();
        fs::write(store.dir().join("keep.txt"), "bystander").unwrap();
        assert_eq!(store.clear().unwrap(), 2);
        assert!(store.dir().join("keep.txt").exists());
        assert!(!store.dir().join("00000001.rec").exists());
        assert!(!store.dir().join(".tmp-1-abc").exists());
        assert_eq!(store.load().unwrap().records.len(), 0);
        // Clearing an empty or missing store is fine.
        assert_eq!(store.clear().unwrap(), 0);
        assert_eq!(temp_store("clear-missing").clear().unwrap(), 0);
        let _ = fs::remove_dir_all(store.dir());
    }
}
