//! Property tests: arbitrarily interleaved open/close/leaf operations
//! always drain to a well-parented trace tree whose structure matches a
//! reference model and whose child intervals nest inside their parents —
//! including when spans are opened concurrently on worker threads that
//! parent under a spawning span via `span_in`.

use std::sync::Mutex;

use proptest::prelude::*;

/// Serializes the tests in this binary: they toggle the global telemetry
/// switch and drain the global span collector.
static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug, PartialEq)]
struct Model {
    name: String,
    children: Vec<Model>,
}

fn attach(stack: &mut [Model], roots: &mut Vec<Model>, node: Model) {
    match stack.last_mut() {
        Some(top) => top.children.push(node),
        None => roots.push(node),
    }
}

fn shape(node: &telemetry::SpanNode) -> Model {
    Model {
        name: node.name.clone(),
        children: node.children.iter().map(shape).collect(),
    }
}

fn check_intervals(node: &telemetry::SpanNode) {
    let eps = 1e-9;
    let end = node.start_secs + node.duration_secs;
    let mut child_total = 0.0;
    for child in &node.children {
        assert!(
            child.start_secs + eps >= node.start_secs,
            "child {} starts before parent {}",
            child.name,
            node.name
        );
        assert!(
            child.start_secs + child.duration_secs <= end + eps,
            "child {} ends after parent {}",
            child.name,
            node.name
        );
        assert!(
            child.duration_secs <= node.duration_secs + eps,
            "child {} outlasts parent {}",
            child.name,
            node.name
        );
        child_total += child.duration_secs;
        check_intervals(child);
    }
    assert!(
        child_total <= node.duration_secs + 1e-6,
        "children of {} sum to {} > parent {}",
        node.name,
        child_total,
        node.duration_secs
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    // Command stream: 0 = open a nested span, 1 = close the innermost
    // open span, 2 = open and immediately close a leaf span.
    #[test]
    fn interleaved_spans_always_form_a_well_parented_tree(
        cmds in prop::collection::vec(0u8..3, 1..60)
    ) {
        let _guard = lock();
        telemetry::trace::clear();
        telemetry::set_enabled(true);

        let mut span_stack: Vec<telemetry::Span> = Vec::new();
        let mut model_stack: Vec<Model> = Vec::new();
        let mut model_roots: Vec<Model> = Vec::new();
        let mut opened = 0usize;
        for cmd in cmds {
            match cmd {
                0 => {
                    span_stack.push(telemetry::span(format!("s{opened}")));
                    model_stack.push(Model { name: format!("s{opened}"), children: Vec::new() });
                    opened += 1;
                }
                1 => {
                    if let Some(span) = span_stack.pop() {
                        drop(span);
                        let node = model_stack.pop().unwrap();
                        attach(&mut model_stack, &mut model_roots, node);
                    }
                }
                _ => {
                    {
                        let _leaf = telemetry::span(format!("s{opened}"));
                    }
                    let node = Model { name: format!("s{opened}"), children: Vec::new() };
                    attach(&mut model_stack, &mut model_roots, node);
                    opened += 1;
                }
            }
        }
        // Unwind innermost-first, as RAII scoping would.
        while let Some(span) = span_stack.pop() {
            drop(span);
            let node = model_stack.pop().unwrap();
            attach(&mut model_stack, &mut model_roots, node);
        }

        telemetry::set_enabled(false);
        let trace = telemetry::trace::drain();

        prop_assert_eq!(trace.len(), opened);
        let got: Vec<Model> = trace.roots.iter().map(shape).collect();
        prop_assert_eq!(got, model_roots);
        for root in &trace.roots {
            check_intervals(root);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    // Any number of concurrently collecting worker threads, each opening
    // its own nested spans, drains to one well-formed tree: every worker
    // span parents under the spawning root, carries its thread's name and
    // a distinct nonzero thread ordinal, and nested spans stay on their
    // worker's chain.
    #[test]
    fn concurrent_worker_spans_group_under_the_spawning_span(
        workers in 1usize..7,
        leaves_per_worker in 0usize..5,
    ) {
        let _guard = lock();
        telemetry::trace::clear();
        telemetry::set_enabled(true);

        {
            let _root = telemetry::span("root");
            let ctx = telemetry::current_context();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    std::thread::Builder::new()
                        .name(format!("pool-{w}"))
                        .spawn_scoped(scope, move || {
                            let _span = telemetry::span_in(format!("worker.{w}"), ctx);
                            for l in 0..leaves_per_worker {
                                let _leaf = telemetry::span(format!("leaf.{w}.{l}"));
                            }
                        })
                        .expect("worker threads spawn");
                }
            });
        }

        telemetry::set_enabled(false);
        let trace = telemetry::trace::drain();

        // One root holding every worker span; nothing leaked to the top.
        prop_assert_eq!(trace.roots.len(), 1);
        let root = &trace.roots[0];
        prop_assert_eq!(root.name.as_str(), "root");
        prop_assert_eq!(trace.len(), 1 + workers * (1 + leaves_per_worker));
        prop_assert_eq!(root.children.len(), workers);

        let mut seen_workers: Vec<usize> = Vec::new();
        let mut seen_threads: Vec<u64> = Vec::new();
        for child in &root.children {
            let w: usize = child.name.strip_prefix("worker.").unwrap().parse().unwrap();
            seen_workers.push(w);
            // Thread attribution: the OS thread name and a process-unique
            // nonzero ordinal distinct from the root's.
            prop_assert_eq!(child.thread_name.as_deref(), Some(format!("pool-{w}").as_str()));
            prop_assert!(child.thread > 0);
            prop_assert_ne!(child.thread, root.thread);
            seen_threads.push(child.thread);
            // Leaves stay on the worker's chain, in open order.
            prop_assert_eq!(child.children.len(), leaves_per_worker);
            for (l, leaf) in child.children.iter().enumerate() {
                prop_assert_eq!(leaf.name.as_str(), format!("leaf.{w}.{l}").as_str());
                prop_assert_eq!(leaf.thread, child.thread);
                prop_assert!(leaf.children.is_empty());
            }
            check_intervals(child);
        }
        seen_workers.sort_unstable();
        prop_assert_eq!(seen_workers, (0..workers).collect::<Vec<_>>());
        seen_threads.sort_unstable();
        seen_threads.dedup();
        prop_assert_eq!(seen_threads.len(), workers, "worker threads must have distinct ordinals");
        check_intervals(root);
    }
}
