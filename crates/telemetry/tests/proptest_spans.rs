//! Property test: arbitrarily interleaved open/close/leaf operations
//! always drain to a well-parented trace tree whose structure matches a
//! reference model and whose child intervals nest inside their parents.

use proptest::prelude::*;

#[derive(Debug, PartialEq)]
struct Model {
    name: String,
    children: Vec<Model>,
}

fn attach(stack: &mut [Model], roots: &mut Vec<Model>, node: Model) {
    match stack.last_mut() {
        Some(top) => top.children.push(node),
        None => roots.push(node),
    }
}

fn shape(node: &telemetry::SpanNode) -> Model {
    Model {
        name: node.name.clone(),
        children: node.children.iter().map(shape).collect(),
    }
}

fn check_intervals(node: &telemetry::SpanNode) {
    let eps = 1e-9;
    let end = node.start_secs + node.duration_secs;
    let mut child_total = 0.0;
    for child in &node.children {
        assert!(
            child.start_secs + eps >= node.start_secs,
            "child {} starts before parent {}",
            child.name,
            node.name
        );
        assert!(
            child.start_secs + child.duration_secs <= end + eps,
            "child {} ends after parent {}",
            child.name,
            node.name
        );
        assert!(
            child.duration_secs <= node.duration_secs + eps,
            "child {} outlasts parent {}",
            child.name,
            node.name
        );
        child_total += child.duration_secs;
        check_intervals(child);
    }
    assert!(
        child_total <= node.duration_secs + 1e-6,
        "children of {} sum to {} > parent {}",
        node.name,
        child_total,
        node.duration_secs
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    // Command stream: 0 = open a nested span, 1 = close the innermost
    // open span, 2 = open and immediately close a leaf span.
    #[test]
    fn interleaved_spans_always_form_a_well_parented_tree(
        cmds in prop::collection::vec(0u8..3, 1..60)
    ) {
        telemetry::trace::clear();
        telemetry::set_enabled(true);

        let mut span_stack: Vec<telemetry::Span> = Vec::new();
        let mut model_stack: Vec<Model> = Vec::new();
        let mut model_roots: Vec<Model> = Vec::new();
        let mut opened = 0usize;
        for cmd in cmds {
            match cmd {
                0 => {
                    span_stack.push(telemetry::span(format!("s{opened}")));
                    model_stack.push(Model { name: format!("s{opened}"), children: Vec::new() });
                    opened += 1;
                }
                1 => {
                    if let Some(span) = span_stack.pop() {
                        drop(span);
                        let node = model_stack.pop().unwrap();
                        attach(&mut model_stack, &mut model_roots, node);
                    }
                }
                _ => {
                    {
                        let _leaf = telemetry::span(format!("s{opened}"));
                    }
                    let node = Model { name: format!("s{opened}"), children: Vec::new() };
                    attach(&mut model_stack, &mut model_roots, node);
                    opened += 1;
                }
            }
        }
        // Unwind innermost-first, as RAII scoping would.
        while let Some(span) = span_stack.pop() {
            drop(span);
            let node = model_stack.pop().unwrap();
            attach(&mut model_stack, &mut model_roots, node);
        }

        telemetry::set_enabled(false);
        let trace = telemetry::trace::drain();

        prop_assert_eq!(trace.len(), opened);
        let got: Vec<Model> = trace.roots.iter().map(shape).collect();
        prop_assert_eq!(got, model_roots);
        for root in &trace.roots {
            check_intervals(root);
        }
    }
}
