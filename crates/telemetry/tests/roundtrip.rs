//! JSON round-trip tests: traces, metrics snapshots, and run manifests
//! must survive serialize → deserialize unchanged, since they are written
//! next to artifacts and read back by tooling.

use std::sync::Mutex;
use telemetry::{metrics, trace, RunManifest};

/// Serializes the tests in this binary: they share the global telemetry
/// switch and collectors.
static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn trace_json_round_trip() {
    let guard = lock();
    trace::clear();
    telemetry::set_enabled(true);
    {
        let _outer = telemetry::span("outer");
        {
            let _inner = telemetry::span("inner");
            let _leaf = telemetry::span("leaf");
        }
        let _sibling = telemetry::span("sibling");
    }
    telemetry::set_enabled(false);
    let original = trace::drain();
    drop(guard);

    assert_eq!(original.len(), 4);
    let json = serde_json::to_string(&original).unwrap();
    let restored: telemetry::Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, original);
    assert_eq!(restored.roots[0].children[0].children[0].name, "leaf");
}

#[test]
fn metrics_snapshot_json_round_trip() {
    let guard = lock();
    telemetry::set_enabled(true);
    metrics::reset();
    metrics::counter("rt.events").add(7);
    metrics::gauge("rt.level").set(0.125);
    let h = metrics::histogram("rt.lat");
    for i in 1..=100 {
        h.record(i as f64 * 1e-3);
    }
    let original = metrics::snapshot();
    telemetry::set_enabled(false);
    metrics::reset();
    drop(guard);

    let json = serde_json::to_string_pretty(&original).unwrap();
    let restored: metrics::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, original);
    assert_eq!(restored.counter("rt.events"), Some(7));
    assert_eq!(restored.gauge("rt.level"), Some(0.125));
    let hist = restored.histogram("rt.lat").unwrap();
    assert_eq!(hist.count, 100);
    assert!(hist.p50.is_some());
}

#[test]
fn manifest_json_round_trip() {
    let mut original = RunManifest::new("repro", "0.1.0", 0xDEADBEEF, "quick");
    original.push_crate("varstats", "0.1.0");
    original.push_crate("telemetry", "0.1.0");
    original.records = 4200;
    original.machines = 40;
    original.push_experiment("T2", 0.125, 2);
    original.push_experiment("F9", 2.5, 1);
    original.total_wall_secs = 3.0;

    let json = original.to_json().unwrap();
    for field in ["\"seed\"", "\"scale\"", "\"experiments\"", "\"wall_secs\""] {
        assert!(json.contains(field), "manifest JSON missing {field}");
    }
    let restored = RunManifest::from_json(&json).unwrap();
    assert_eq!(restored, original);
    assert_eq!(restored.seed, 0xDEADBEEF);
    assert_eq!(restored.experiments[1].wall_secs, 2.5);
    assert_eq!(restored.artifact_count, 3);
}
