//! # telemetry — the pipeline that measures itself
//!
//! A reproduction of a paper about measurement variability should measure
//! its own behaviour, and should do so by its own rules. This crate gives
//! the workspace:
//!
//! * **Spans** ([`span`]) — RAII wall-time timers forming a hierarchical,
//!   thread-safe trace tree collected globally ([`trace::drain`]). Every
//!   span records the ordinal and OS name of the thread it ran on, and
//!   worker threads parent their spans under the span that spawned them
//!   by passing a [`SpanContext`] to [`span_in`].
//! * **Metrics** ([`metrics`]) — named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and log-bucketed [`metrics::Histogram`]s with
//!   quantile queries, all lock-free on the hot path.
//! * **Dogfooded summaries** ([`report`]) — latency reports computed with
//!   `varstats`: median, non-parametric order-statistic 95% CI, and CoV.
//!   Never mean ± stddev; the observability layer obeys the paper's own
//!   methodology.
//! * **Run manifests** ([`manifest::RunManifest`]) — seed, scale, host,
//!   crate versions, and per-experiment wall times, serialized next to
//!   artifacts so every CSV has provenance.
//!
//! Telemetry is **off by default** and is a near-zero-cost no-op while
//! disabled: every instrumented site pays exactly one relaxed atomic load
//! (see the `telemetry_overhead` bench in `crates/bench`). Flip it on with
//! [`set_enabled`] — the `repro` CLI does so for `--trace` / `--metrics`.
//!
//! ```
//! telemetry::set_enabled(true);
//! {
//!     let _outer = telemetry::span("campaign");
//!     let _inner = telemetry::span("campaign.collect");
//!     telemetry::metrics::counter("campaign.records").add(500);
//! }
//! let trace = telemetry::trace::drain();
//! assert_eq!(trace.roots.len(), 1);
//! assert_eq!(trace.roots[0].children[0].name, "campaign.collect");
//! assert_eq!(telemetry::metrics::snapshot().counter("campaign.records"), Some(500));
//! telemetry::set_enabled(false);
//! telemetry::metrics::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod manifest;
pub mod metrics;
pub mod report;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off globally (runtime switch).
///
/// Instrumented code observes the switch with a single relaxed atomic
/// load, so leaving telemetry disabled costs nothing measurable. Enable
/// *before* the instrumented work starts: handles and spans created while
/// disabled stay inert.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently enabled (one relaxed atomic load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub use manifest::{
    CacheSection, DistributedSection, ExperimentTiming, FaultSection, HostInfo, RunManifest,
    StreamSection, MANIFEST_SCHEMA_VERSION,
};
pub use report::{latency_summary, span_report, LatencySummary, SpanStats};
pub use trace::{current_context, span, span_in, Span, SpanContext, SpanNode, Trace};

/// Serializes telemetry tests that toggle the global switch or drain the
/// global collectors, so `cargo test`'s parallel threads don't interleave.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
