//! Named counters, gauges, and log-bucketed histograms.
//!
//! Handles come from the global registry via [`counter`], [`gauge`], and
//! [`histogram`]. While telemetry is disabled each of those costs one
//! relaxed atomic load and returns an inert handle whose operations are
//! plain branches — no locks, no allocation, no atomics. While enabled,
//! the hot paths (`add`, `set`, `record`) are lock-free: the registry
//! mutex is only taken when a handle is created or a snapshot is built.
//!
//! [`Histogram`] buckets values on a logarithmic grid — 16 sub-buckets
//! per octave, taken straight from the top four mantissa bits of the
//! `f64` — so quantile queries have a bounded relative error of about
//! 2.2 % over the full positive range with a fixed 1 344-slot table.
//! The first [`EXACT_SAMPLES`] observations are additionally kept
//! verbatim, so quantiles over small counts (most per-experiment
//! histograms) are exact sorted-sample quantiles, not bucket midpoints.
//!
//! # Handle lifetime and the enable switch
//!
//! A handle fetched **while telemetry is disabled** is permanently inert:
//! it does not re-resolve when [`crate::set_enabled`] later turns
//! collection on. Enable telemetry *before* fetching handles (the usual
//! pattern — look handles up at the instrumented site, as this whole
//! workspace does — gets this for free, since lookup is cheap and
//! per-call). Using an inert handle's write path after telemetry was
//! enabled trips a debug assertion naming this contract; release builds
//! keep the write path assertion-free and branch-only.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Sub-buckets per octave (power of two); 4 mantissa bits → 16.
const SUB: usize = 16;
/// Smallest representable octave: 2^-44 ≈ 5.7e-14, far below a nanosecond.
const MIN_EXP: i32 = -44;
/// Largest representable octave: 2^39 ≈ 5.5e11, far above any wall time.
const MAX_EXP: i32 = 39;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
const BUCKETS: usize = OCTAVES * SUB;

/// Observations kept verbatim for the exact small-count quantile path.
/// Histograms at or below this count answer quantile queries from the
/// sorted samples themselves (zero approximation error); above it they
/// fall back to the log-bucketed grid.
pub const EXACT_SAMPLES: usize = 256;

struct HistogramCore {
    counts: Vec<AtomicU64>,
    /// The first [`EXACT_SAMPLES`] observations, as `f64` bit patterns.
    /// A zero slot is unwritten (0.0 never lands here: non-positive
    /// values are rejected before sampling), which lets the quantile
    /// path detect a racing writer and fall back to the grid.
    samples: Vec<AtomicU64>,
    /// Values rejected from the grid: zero, negative, or non-finite.
    nonpositive: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            samples: (0..EXACT_SAMPLES).map(|_| AtomicU64::new(0)).collect(),
            nonpositive: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Bucket index for a positive finite value: octave from the biased
    /// exponent, sub-bucket from the top four mantissa bits.
    fn index(v: f64) -> usize {
        let bits = v.to_bits();
        let biased = ((bits >> 52) & 0x7ff) as i32;
        if biased == 0 {
            return 0; // subnormal: below the grid, clamp to the first slot
        }
        let exp = biased - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        if exp > MAX_EXP {
            return BUCKETS - 1;
        }
        let sub = ((bits >> 48) & 0xf) as usize;
        (exp - MIN_EXP) as usize * SUB + sub
    }

    /// Lower and upper bounds of bucket `i`.
    fn bounds(i: usize) -> (f64, f64) {
        let exp = MIN_EXP + (i / SUB) as i32;
        let sub = (i % SUB) as f64;
        let base = (exp as f64).exp2();
        (
            base * (1.0 + sub / SUB as f64),
            base * (1.0 + (sub + 1.0) / SUB as f64),
        )
    }

    fn record(&self, v: f64) {
        if !(v > 0.0 && v.is_finite()) {
            self.nonpositive.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.counts[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        let bits = v.to_bits();
        // fetch_add hands every observation a unique arrival index; the
        // first EXACT_SAMPLES of them claim a verbatim sample slot.
        let arrival = self.count.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.samples.get(arrival as usize) {
            slot.store(bits, Ordering::Relaxed);
        }
        // For positive finite f64 the bit pattern orders like the value.
        self.min_bits.fetch_min(bits, Ordering::Relaxed);
        self.max_bits.fetch_max(bits, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn min(&self) -> Option<f64> {
        (self.count.load(Ordering::Relaxed) > 0)
            .then(|| f64::from_bits(self.min_bits.load(Ordering::Relaxed)))
    }

    fn max(&self) -> Option<f64> {
        (self.count.load(Ordering::Relaxed) > 0)
            .then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed)))
    }

    /// Quantile over the recorded values: exact (sorted-sample, linear
    /// interpolation) while the count is at most [`EXACT_SAMPLES`];
    /// otherwise nearest-rank over the buckets, where the returned
    /// representative is the bucket's geometric midpoint clamped to the
    /// observed [min, max], so q = 0 and q = 1 stay exact.
    fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if let Some(exact) = self.exact_quantile(n, q) {
            return Some(exact);
        }
        let rank = (q * (n - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, slot) in self.counts.iter().enumerate() {
            cum += slot.load(Ordering::Relaxed);
            if cum > rank {
                let (lo, hi) = Self::bounds(i);
                let rep = (lo * hi).sqrt();
                let lo_clamp = self.min().unwrap_or(rep);
                let hi_clamp = self.max().unwrap_or(rep);
                return Some(rep.clamp(lo_clamp, hi_clamp));
            }
        }
        self.max()
    }

    /// The exact small-count path: reads back the first `n` verbatim
    /// samples and interpolates the quantile on the sorted values.
    /// Returns `None` when the count exceeds the sample buffer or when a
    /// racing writer has claimed a slot but not yet stored into it (an
    /// unwritten slot reads as 0 bits, which no accepted value produces);
    /// the caller then falls back to the bucketed estimate.
    fn exact_quantile(&self, n: u64, q: f64) -> Option<f64> {
        if n as usize > EXACT_SAMPLES {
            return None;
        }
        let mut values = Vec::with_capacity(n as usize);
        for slot in &self.samples[..n as usize] {
            let bits = slot.load(Ordering::Relaxed);
            if bits == 0 {
                return None;
            }
            values.push(f64::from_bits(bits));
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("accepted samples are finite"));
        varstats::quantile::quantile_sorted(&values, q, varstats::quantile::QuantileMethod::Linear)
            .ok()
    }
}

/// Monotonically increasing event counter. Inert when obtained while
/// telemetry is disabled.
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        match &self.0 {
            Some(cell) => {
                cell.fetch_add(n, Ordering::Relaxed);
            }
            None => debug_assert!(
                !crate::enabled(),
                "inert Counter written after telemetry was enabled; \
                 fetch handles after set_enabled(true) (see metrics module docs)"
            ),
        }
    }

    /// Current value (0 for an inert handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins instantaneous value. Inert when obtained while
/// telemetry is disabled.
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrites the gauge with `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        match &self.0 {
            Some(cell) => cell.store(v.to_bits(), Ordering::Relaxed),
            None => debug_assert!(
                !crate::enabled(),
                "inert Gauge written after telemetry was enabled; \
                 fetch handles after set_enabled(true) (see metrics module docs)"
            ),
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the current value — a
    /// monotone high-water mark (used by the streaming data path for
    /// peak-residency gauges). Writes race benignly: every update only
    /// moves the value upward, so concurrent `set_max` calls converge on
    /// the true maximum.
    #[inline]
    pub fn set_max(&self, v: f64) {
        match &self.0 {
            Some(cell) => {
                let mut cur = cell.load(Ordering::Relaxed);
                while v > f64::from_bits(cur) {
                    match cell.compare_exchange_weak(
                        cur,
                        v.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => cur = seen,
                    }
                }
            }
            None => debug_assert!(
                !crate::enabled(),
                "inert Gauge written after telemetry was enabled; \
                 fetch handles after set_enabled(true) (see metrics module docs)"
            ),
        }
    }

    /// Current value (0.0 for an inert handle).
    pub fn value(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Log-bucketed distribution of positive values with quantile queries.
/// Inert when obtained while telemetry is disabled.
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation. Zero, negative, and non-finite values go
    /// to a separate rejection counter instead of the grid.
    #[inline]
    pub fn record(&self, v: f64) {
        match &self.0 {
            Some(core) => core.record(v),
            None => debug_assert!(
                !crate::enabled(),
                "inert Histogram written after telemetry was enabled; \
                 fetch handles after set_enabled(true) (see metrics module docs)"
            ),
        }
    }

    /// Number of values on the grid.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Quantile (`0.0 ..= 1.0`): exact while at most [`EXACT_SAMPLES`]
    /// values have been recorded, nearest-rank with ≈2.2 % relative
    /// bucket error above that; `None` when empty or for an inert handle.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.0.as_ref().and_then(|c| c.quantile(q))
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Looks up (registering on first use) the counter named `name`.
/// Returns an inert handle while telemetry is disabled.
pub fn counter(name: &str) -> Counter {
    if !crate::enabled() {
        return Counter(None);
    }
    Counter(Some(
        registry()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone(),
    ))
}

/// Looks up (registering on first use) the gauge named `name`.
/// Returns an inert handle while telemetry is disabled.
pub fn gauge(name: &str) -> Gauge {
    if !crate::enabled() {
        return Gauge(None);
    }
    Gauge(Some(
        registry()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone(),
    ))
}

/// Looks up (registering on first use) the histogram named `name`.
/// Returns an inert handle while telemetry is disabled.
pub fn histogram(name: &str) -> Histogram {
    if !crate::enabled() {
        return Histogram(None);
    }
    Histogram(Some(
        registry()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new()))
            .clone(),
    ))
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Registered name.
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Registered name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Registered name.
    pub name: String,
    /// Observations on the grid.
    pub count: u64,
    /// Observations rejected (zero, negative, or non-finite).
    pub rejected: u64,
    /// Sum of gridded observations.
    pub total: f64,
    /// Smallest observation, if any.
    pub min: Option<f64>,
    /// Largest observation, if any.
    pub max: Option<f64>,
    /// Median (p50), if any.
    pub p50: Option<f64>,
    /// 90th percentile, if any.
    pub p90: Option<f64>,
    /// 95th percentile, if any.
    pub p95: Option<f64>,
    /// 99th percentile, if any.
    pub p99: Option<f64>,
}

/// Point-in-time view of every registered metric.
///
/// **Ordering contract:** each vector is sorted by metric name in
/// ascending byte order (the registry is a `BTreeMap`). The `repro
/// --metrics` summary table, `metrics.json`, and the regression
/// sentinel's history records all inherit this order, so equal runs
/// render and serialize identically; reordering it is a breaking change
/// to those consumers ([`crate::manifest::MANIFEST_SCHEMA_VERSION`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterValue>,
    /// All gauges.
    pub gauges: Vec<GaugeValue>,
    /// All histograms, summarized.
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Summary of the histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Captures the current value of every registered metric, sorted by
/// name (see the [`MetricsSnapshot`] ordering contract).
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(name, cell)| CounterValue {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(name, cell)| GaugeValue {
                name: name.clone(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(name, core)| HistogramSummary {
                name: name.clone(),
                count: core.count.load(Ordering::Relaxed),
                rejected: core.nonpositive.load(Ordering::Relaxed),
                total: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                min: core.min(),
                max: core.max(),
                p50: core.quantile(0.50),
                p90: core.quantile(0.90),
                p95: core.quantile(0.95),
                p99: core.quantile(0.99),
            })
            .collect(),
    }
}

/// Unregisters every metric. Live handles keep their cells but the cells
/// no longer appear in snapshots.
pub fn reset() {
    let mut reg = registry();
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let _guard = crate::test_guard();
        crate::set_enabled(false);
        reset();
        let c = counter("off.counter");
        c.inc();
        c.add(10);
        let g = gauge("off.gauge");
        g.set(3.5);
        let h = histogram("off.hist");
        h.record(1.0);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        counter("t.requests").add(3);
        counter("t.requests").inc();
        gauge("t.depth").set(2.0);
        gauge("t.depth").set(7.5);
        let snap = snapshot();
        crate::set_enabled(false);
        reset();
        assert_eq!(snap.counter("t.requests"), Some(4));
        assert_eq!(snap.gauge("t.depth"), Some(7.5));
    }

    #[test]
    fn set_max_is_a_high_water_mark() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        let g = gauge("t.peak");
        g.set_max(5.0);
        g.set_max(2.0); // lower values never pull the peak down
        assert_eq!(g.value(), 5.0);
        g.set_max(9.5);
        let snap = snapshot();
        crate::set_enabled(false);
        reset();
        assert_eq!(snap.gauge("t.peak"), Some(9.5));
    }

    #[test]
    fn histogram_rejects_nonpositive_and_tracks_extremes() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        let h = histogram("t.span");
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(0.25);
        h.record(4.0);
        let snap = snapshot();
        crate::set_enabled(false);
        reset();
        let s = snap.histogram("t.span").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.rejected, 3);
        assert_eq!(s.min, Some(0.25));
        assert_eq!(s.max, Some(4.0));
        assert!((s.total - 4.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_match_varstats_exact_quantiles() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        // Log-uniform-ish spread over six orders of magnitude.
        let values: Vec<f64> = (1..=2000)
            .map(|i| 1e-6 * (1.0 + i as f64 / 7.0) * (i as f64))
            .collect();
        let h = histogram("t.quant");
        for &v in &values {
            h.record(v);
        }
        crate::set_enabled(false);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let approx = h.quantile(q).unwrap();
            let exact = varstats::quantile::quantile_sorted(
                &sorted,
                q,
                varstats::quantile::QuantileMethod::Linear,
            )
            .unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.05,
                "q={q}: approx {approx} vs exact {exact} (rel err {rel:.4})"
            );
        }
        reset();
    }

    #[test]
    fn small_count_quantiles_are_exact() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        let h = histogram("t.exact");
        // Values deliberately placed so bucket midpoints would NOT match.
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            h.record(v);
        }
        crate::set_enabled(false);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        // Linear interpolation between order statistics, like varstats.
        assert_eq!(h.quantile(0.25), Some(2.0));
        assert_eq!(h.quantile(0.125), Some(1.5));
        reset();
    }

    #[test]
    fn quantiles_stay_exact_up_to_the_sample_threshold() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        let h = histogram("t.exact.threshold");
        for i in 1..=EXACT_SAMPLES {
            h.record(i as f64);
        }
        crate::set_enabled(false);
        // At exactly EXACT_SAMPLES observations the path is still exact.
        let sorted: Vec<f64> = (1..=EXACT_SAMPLES).map(|i| i as f64).collect();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = varstats::quantile::quantile_sorted(
                &sorted,
                q,
                varstats::quantile::QuantileMethod::Linear,
            )
            .unwrap();
            assert_eq!(h.quantile(q), Some(exact), "q={q}");
        }
        reset();
    }

    #[test]
    fn quantiles_past_the_threshold_fall_back_to_buckets() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        let h = histogram("t.exact.overflow");
        for i in 1..=(EXACT_SAMPLES + 100) {
            h.record(i as f64);
        }
        crate::set_enabled(false);
        let n = EXACT_SAMPLES + 100;
        let p50 = h.quantile(0.5).unwrap();
        let exact = (n as f64 + 1.0) / 2.0;
        let rel = (p50 - exact).abs() / exact;
        assert!(rel < 0.05, "bucketed p50 {p50} vs exact {exact}");
        // Extremes stay within bucket error (clamped to observed min/max).
        let p0 = h.quantile(0.0).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!((1.0..1.07).contains(&p0), "p0 {p0}");
        assert!(p100 <= n as f64 && p100 > n as f64 / 1.07, "p100 {p100}");
        reset();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "inert Counter written after telemetry was enabled")]
    fn stale_inert_counter_trips_the_debug_assertion() {
        let _guard = crate::test_guard();
        crate::set_enabled(false);
        let stale = counter("t.stale");
        crate::set_enabled(true);
        // Make sure the switch is restored even though this panics.
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                crate::set_enabled(false);
                reset();
            }
        }
        let _restore = Restore;
        stale.inc();
    }

    #[test]
    fn snapshot_lists_metrics_in_alphabetical_order() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        reset();
        // Registered deliberately out of order.
        for name in ["z.last", "a.first", "m.middle"] {
            counter(name).inc();
            gauge(name).set(1.0);
            histogram(name).record(1.0);
        }
        let snap = snapshot();
        crate::set_enabled(false);
        reset();
        let expect = ["a.first", "m.middle", "z.last"];
        let counters: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let gauges: Vec<&str> = snap.gauges.iter().map(|g| g.name.as_str()).collect();
        let hists: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(counters, expect);
        assert_eq!(gauges, expect);
        assert_eq!(hists, expect);
    }

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [1e-9, 3.7e-6, 0.001, 0.5, 1.0, 1.5, 123.456, 9.9e9] {
            let i = HistogramCore::index(v);
            let (lo, hi) = HistogramCore::bounds(i);
            assert!(lo <= v && v < hi, "v={v} not in [{lo}, {hi})");
            assert!(hi / lo < 1.07, "bucket [{lo}, {hi}) too wide");
        }
    }
}
