//! Dogfooded latency summaries.
//!
//! The paper's core prescription — report the median with a
//! non-parametric order-statistic confidence interval, quote a CoV, and
//! never summarize skewed timing data as mean ± stddev — applies to the
//! pipeline's own latencies too. [`latency_summary`] builds such a
//! summary from raw samples via `varstats`, and [`span_report`]
//! aggregates a [`Trace`] into per-name summaries for display.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use varstats::ci::nonparametric::median_ci_auto;
use varstats::descriptive::coefficient_of_variation;
use varstats::quantile::median;

/// Median-centered summary of a latency sample, per the paper's
/// methodology. Mean and standard deviation are deliberately absent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample size.
    pub n: usize,
    /// Sample median in seconds.
    pub median_secs: f64,
    /// Non-parametric order-statistic CI for the median `(lower, upper)`,
    /// when `n` is large enough to support one at `confidence`.
    pub ci_secs: Option<(f64, f64)>,
    /// Nominal confidence level of `ci_secs` (e.g. 0.95).
    pub confidence: f64,
    /// Coefficient of variation (dimensionless), when `n >= 2`.
    pub cov: Option<f64>,
}

/// Summarizes `samples` (seconds) as median + non-parametric CI + CoV.
///
/// Returns `None` for an empty sample. With too few samples for an
/// order-statistic CI at `confidence`, `ci_secs` is `None` but the median
/// (and CoV, for `n >= 2`) are still reported.
pub fn latency_summary(samples: &[f64], confidence: f64) -> Option<LatencySummary> {
    let med = median(samples).ok()?;
    let ci = median_ci_auto(samples, confidence)
        .ok()
        .map(|r| (r.ci.lower, r.ci.upper));
    let cov = coefficient_of_variation(samples).ok();
    Some(LatencySummary {
        n: samples.len(),
        median_secs: med,
        ci_secs: ci,
        confidence,
        cov,
    })
}

/// Per-span-name aggregate over a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: usize,
    /// Sum of their wall times, in seconds.
    pub total_secs: f64,
    /// Median / CI / CoV of the individual span durations.
    pub latency: LatencySummary,
}

/// Groups every span in `trace` by name and summarizes each group's
/// durations with [`latency_summary`]. Results are sorted by descending
/// total time (the usual "where did the time go" ordering).
pub fn span_report(trace: &Trace, confidence: f64) -> Vec<SpanStats> {
    let mut by_name: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    trace.walk(|node| {
        by_name
            .entry(node.name.clone())
            .or_default()
            .push(node.duration_secs);
    });
    let mut stats: Vec<SpanStats> = by_name
        .into_iter()
        .filter_map(|(name, durations)| {
            let latency = latency_summary(&durations, confidence)?;
            Some(SpanStats {
                name,
                count: durations.len(),
                total_secs: durations.iter().sum(),
                latency,
            })
        })
        .collect();
    stats.sort_by(|a, b| {
        b.total_secs
            .partial_cmp(&a.total_secs)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanNode;

    fn leaf(name: &str, start: f64, dur: f64) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            thread: 1,
            thread_name: None,
            start_secs: start,
            duration_secs: dur,
            children: Vec::new(),
        }
    }

    #[test]
    fn summary_matches_varstats_directly() {
        let samples: Vec<f64> = (1..=50).map(|i| i as f64 / 10.0).collect();
        let s = latency_summary(&samples, 0.95).unwrap();
        assert_eq!(s.n, 50);
        assert_eq!(s.median_secs, median(&samples).unwrap());
        let expected = median_ci_auto(&samples, 0.95).unwrap();
        assert_eq!(s.ci_secs, Some((expected.ci.lower, expected.ci.upper)));
        assert_eq!(s.cov, Some(coefficient_of_variation(&samples).unwrap()));
    }

    #[test]
    fn tiny_samples_degrade_gracefully() {
        assert!(latency_summary(&[], 0.95).is_none());
        let one = latency_summary(&[2.0], 0.95).unwrap();
        assert_eq!(one.median_secs, 2.0);
        assert_eq!(one.ci_secs, None);
        let two = latency_summary(&[2.0, 4.0], 0.95).unwrap();
        assert_eq!(two.median_secs, 3.0);
        assert_eq!(two.ci_secs, None);
        assert!(two.cov.is_some());
    }

    #[test]
    fn span_report_groups_and_orders_by_total_time() {
        let trace = Trace {
            roots: vec![SpanNode {
                name: "outer".to_string(),
                thread: 1,
                thread_name: None,
                start_secs: 0.0,
                duration_secs: 10.0,
                children: vec![
                    leaf("inner", 0.0, 1.0),
                    leaf("inner", 2.0, 3.0),
                    leaf("other", 6.0, 2.0),
                ],
            }],
        };
        let report = span_report(&trace, 0.95);
        let names: Vec<&str> = report.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "other"]);
        let inner = &report[1];
        assert_eq!(inner.count, 2);
        assert_eq!(inner.total_secs, 4.0);
        assert_eq!(inner.latency.median_secs, 2.0);
    }
}
