//! Run manifests: provenance for every batch of artifacts.
//!
//! A [`RunManifest`] records what produced a directory of artifacts —
//! seed, scale, crate versions, host, per-experiment wall times, and
//! artifact counts — and serializes to JSON next to them, so a CSV found
//! on disk six months later can be traced back to an exact configuration.

use serde::{Deserialize, Serialize};
use std::time::{SystemTime, UNIX_EPOCH};

/// Version of the manifest schema. Bump when a field changes meaning or
/// a consumer-visible invariant (like the [`CacheSection::summary`]
/// ordering contract) changes. Manifests written before the field
/// existed deserialize with `schema_version == 0`; consumers such as the
/// regression sentinel upgrade version 0 gracefully and refuse versions
/// *newer* than they understand rather than misreading them.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// Host identification captured at manifest creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism (logical CPUs), 1 if undeterminable.
    pub cpus: usize,
    /// Hostname, or `"unknown"` when it cannot be read.
    pub hostname: String,
}

impl HostInfo {
    /// Detects the current host using std-only sources.
    pub fn detect() -> Self {
        let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .or_else(|_| std::env::var("HOSTNAME"))
            .unwrap_or_else(|_| "unknown".to_string());
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            hostname,
        }
    }
}

/// Name and version of one workspace crate involved in the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrateVersion {
    /// Crate name.
    pub name: String,
    /// Semantic version string.
    pub version: String,
}

/// Wall time and output of one experiment within the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTiming {
    /// Experiment id (e.g. `"F9"`).
    pub id: String,
    /// Wall time of the experiment's run function, in seconds.
    pub wall_secs: f64,
    /// Number of artifacts the experiment produced.
    pub artifacts: usize,
}

/// Artifact-cache accounting for one run. Fields are declared in
/// alphabetical order so the serialized section is deterministically
/// keyed, and none of them carries a timestamp or host detail — the
/// section depends only on what the cache did, which the golden
/// regression fixture relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSection {
    /// Whether the cache was consulted at all (`false` under
    /// `--no-cache`; the counters are then all zero).
    pub enabled: bool,
    /// Experiments served from the cache.
    pub hits: u64,
    /// Entries found corrupt, truncated, or stale and recomputed.
    pub invalidated: u64,
    /// Experiments not found in the cache (clean misses).
    pub misses: u64,
    /// Entries written by this run.
    pub stored: u64,
}

impl CacheSection {
    /// One-line deterministic rendering, e.g.
    /// `cache: 24 hits, 0 invalidated, 0 misses, 0 stored`, or
    /// `cache: disabled`. Stable across hosts and runs with equal
    /// counters.
    ///
    /// **Ordering contract:** counters appear in alphabetical order of
    /// their field names (`hits`, `invalidated`, `misses`, `stored`) —
    /// the same order the struct declares and serializes them. The
    /// regression sentinel stores these lines in run-history records,
    /// so the rendering must diff cleanly across runs and releases;
    /// reordering it is a manifest-schema change
    /// ([`MANIFEST_SCHEMA_VERSION`]).
    pub fn summary(&self) -> String {
        if !self.enabled {
            return "cache: disabled".to_string();
        }
        format!(
            "cache: {} hits, {} invalidated, {} misses, {} stored",
            self.hits, self.invalidated, self.misses, self.stored
        )
    }
}

/// Fault-injection and recovery accounting for one run. Fields are
/// declared in alphabetical order so the serialized section is
/// deterministically keyed; like [`CacheSection`] it carries no
/// timestamps or host details. Counts are observability, not part of the
/// byte-identity contract: two runs that take different fault paths to
/// the same artifacts may legitimately differ here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSection {
    /// Whether chaos injection was armed (`--chaos` / `REPRO_CHAOS`).
    pub enabled: bool,
    /// Faults injected: transient machine faults, I/O errors, and
    /// worker deaths.
    pub injected: u64,
    /// Experiments that kept failing past the retry budget and were
    /// quarantined per-id (their siblings still produced artifacts).
    pub quarantined: u64,
    /// Retries performed after transient or I/O failures.
    pub retried: u64,
}

impl FaultSection {
    /// One-line deterministic rendering, e.g.
    /// `faults: 3 injected, 0 quarantined, 2 retried`, or
    /// `faults: disabled`.
    ///
    /// **Ordering contract:** counters appear in alphabetical order of
    /// their field names (`injected`, `quarantined`, `retried`), like
    /// [`CacheSection::summary`] — see there for why the order is part
    /// of the schema.
    pub fn summary(&self) -> String {
        if !self.enabled {
            return "faults: disabled".to_string();
        }
        format!(
            "faults: {} injected, {} quarantined, {} retried",
            self.injected, self.quarantined, self.retried
        )
    }
}

/// Streaming data-path accounting for one run (DESIGN.md §11). Fields
/// are declared in alphabetical order so the serialized section is
/// deterministically keyed; like [`CacheSection`] it carries no
/// timestamps or host details. The residency peaks are observability,
/// not output: they prove the memory bound (O(largest shard), not
/// O(fleet)) without entering the byte-identity contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSection {
    /// Whether the streaming path was selected (`--stream` /
    /// `REPRO_STREAM`).
    pub enabled: bool,
    /// Peak number of measurement records simultaneously resident in
    /// the stream layer — bounded by the largest shard times the number
    /// of concurrent consumers, never by the fleet.
    pub peak_live_samples: u64,
    /// Peak number of journal shards held in memory at once.
    pub peak_shards_resident: u64,
    /// Total shard replays performed across all streaming passes.
    pub shards_streamed: u64,
}

impl StreamSection {
    /// One-line deterministic rendering, e.g.
    /// `stream: 5500 peak live samples, 2 peak shards resident, 330 shards streamed`,
    /// or `stream: disabled`.
    ///
    /// **Ordering contract:** counters appear in alphabetical order of
    /// their field names (`peak_live_samples`, `peak_shards_resident`,
    /// `shards_streamed`), like [`CacheSection::summary`] — see there
    /// for why the order is part of the schema.
    pub fn summary(&self) -> String {
        if !self.enabled {
            return "stream: disabled".to_string();
        }
        format!(
            "stream: {} peak live samples, {} peak shards resident, {} shards streamed",
            self.peak_live_samples, self.peak_shards_resident, self.shards_streamed
        )
    }
}

/// Distributed-collection accounting for one run (DESIGN.md §12).
/// Fields are declared in alphabetical order so the serialized section
/// is deterministically keyed; like [`CacheSection`] it carries no
/// timestamps or host details. Counts are observability, not part of
/// the byte-identity contract: two kill schedules that converge to the
/// same journal may legitimately differ here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedSection {
    /// Whether collection ran distributed (`--distributed N`).
    pub enabled: bool,
    /// Worker deaths the supervisor observed (nonzero exits, kills).
    pub died: u64,
    /// Duplicate valid shards found at merge time (reassignment fallout,
    /// byte-identical by construction).
    pub duplicates: u64,
    /// Work units quarantined past the reassignment budget.
    pub quarantined: u64,
    /// Lease reclaims that put a unit back up for grabs.
    pub reassigned: u64,
    /// Worker processes spawned (initial fleet + respawns).
    pub spawned: u64,
    /// Work units in the partition.
    pub units: u64,
    /// Worker processes the supervisor aimed to keep live.
    pub workers: u64,
}

impl DistributedSection {
    /// One-line deterministic rendering, e.g.
    /// `distributed: 2 died, 1 duplicates, 0 quarantined, 2 reassigned, 6 spawned, 16 units, 4 workers`,
    /// or `distributed: disabled`.
    ///
    /// **Ordering contract:** counters appear in alphabetical order of
    /// their field names (`died`, `duplicates`, `quarantined`,
    /// `reassigned`, `spawned`, `units`, `workers`), like
    /// [`CacheSection::summary`] — see there for why the order is part
    /// of the schema.
    pub fn summary(&self) -> String {
        if !self.enabled {
            return "distributed: disabled".to_string();
        }
        format!(
            "distributed: {} died, {} duplicates, {} quarantined, {} reassigned, \
             {} spawned, {} units, {} workers",
            self.died,
            self.duplicates,
            self.quarantined,
            self.reassigned,
            self.spawned,
            self.units,
            self.workers
        )
    }
}

/// Everything needed to identify and reproduce one `repro` invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Schema version of this manifest
    /// ([`MANIFEST_SCHEMA_VERSION`] at write time). Deserializes to 0
    /// for manifests written before the field existed.
    #[serde(default)]
    pub schema_version: u32,
    /// Producing tool (e.g. `"repro"`).
    pub tool: String,
    /// Version of the producing tool.
    pub version: String,
    /// RNG seed the run was driven by.
    pub seed: u64,
    /// Scale preset (`"quick"` or `"paper"`).
    pub scale: String,
    /// Unix timestamp (whole seconds) when the manifest was created.
    pub started_unix_secs: u64,
    /// Total wall time of the run, in seconds.
    pub total_wall_secs: f64,
    /// Host the run executed on.
    pub host: HostInfo,
    /// Workspace crates and their versions.
    pub crates: Vec<CrateVersion>,
    /// Records in the simulated campaign dataset.
    pub records: u64,
    /// Machines in the simulated testbed.
    pub machines: u64,
    /// Per-experiment timings, in execution order.
    pub experiments: Vec<ExperimentTiming>,
    /// Total artifacts across all experiments.
    pub artifact_count: u64,
    /// Artifact-cache accounting, when the producing tool has one.
    /// Absent in manifests written before the cache existed.
    #[serde(default)]
    pub cache: Option<CacheSection>,
    /// Fault-injection and recovery accounting. Absent in manifests
    /// written before the fault harness existed.
    #[serde(default)]
    pub faults: Option<FaultSection>,
    /// Streaming data-path accounting. Absent in manifests written
    /// before the streaming path existed and in materialized runs.
    #[serde(default)]
    pub stream: Option<StreamSection>,
    /// Distributed-collection accounting. Absent in manifests written
    /// before distributed collection existed and in single-process runs.
    #[serde(default)]
    pub distributed: Option<DistributedSection>,
}

impl RunManifest {
    /// Starts a manifest for `tool` at `version`, stamping host and time.
    pub fn new(tool: &str, version: &str, seed: u64, scale: &str) -> Self {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            tool: tool.to_string(),
            version: version.to_string(),
            seed,
            scale: scale.to_string(),
            started_unix_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            total_wall_secs: 0.0,
            host: HostInfo::detect(),
            crates: Vec::new(),
            records: 0,
            machines: 0,
            experiments: Vec::new(),
            artifact_count: 0,
            cache: None,
            faults: None,
            stream: None,
            distributed: None,
        }
    }

    /// Registers a workspace crate's version.
    pub fn push_crate(&mut self, name: &str, version: &str) {
        self.crates.push(CrateVersion {
            name: name.to_string(),
            version: version.to_string(),
        });
    }

    /// Appends one experiment's timing and adds to the artifact total.
    pub fn push_experiment(&mut self, id: &str, wall_secs: f64, artifacts: usize) {
        self.experiments.push(ExperimentTiming {
            id: id.to_string(),
            wall_secs,
            artifacts,
        });
        self.artifact_count += artifacts as u64;
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON produced by [`RunManifest::to_json`].
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_accumulates_experiments() {
        let mut m = RunManifest::new("repro", "0.1.0", 42, "quick");
        m.push_crate("varstats", "0.1.0");
        m.push_experiment("T2", 0.5, 2);
        m.push_experiment("F9", 1.25, 1);
        assert_eq!(m.seed, 42);
        assert_eq!(m.scale, "quick");
        assert_eq!(m.experiments.len(), 2);
        assert_eq!(m.artifact_count, 3);
        assert_eq!(m.experiments[1].id, "F9");
        assert!(m.experiments[1].wall_secs > m.experiments[0].wall_secs);
        assert_eq!(m.crates[0].name, "varstats");
    }

    #[test]
    fn manifest_stamps_current_schema_version() {
        let m = RunManifest::new("repro", "0.1.0", 42, "quick");
        assert_eq!(m.schema_version, MANIFEST_SCHEMA_VERSION);
        assert!(MANIFEST_SCHEMA_VERSION >= 1, "0 is reserved for legacy");
    }

    #[test]
    fn cache_section_summary_is_deterministic_and_alphabetical() {
        let mut m = RunManifest::new("repro", "0.1.0", 42, "quick");
        assert_eq!(m.cache, None, "no section until the tool fills one in");
        let section = CacheSection {
            enabled: true,
            hits: 24,
            invalidated: 1,
            misses: 0,
            stored: 1,
        };
        m.cache = Some(section);
        // Counter labels render in alphabetical order — the contract
        // that lets history records diff cleanly across runs.
        assert_eq!(
            section.summary(),
            "cache: 24 hits, 1 invalidated, 0 misses, 1 stored"
        );
        let labels = ["hits", "invalidated", "misses", "stored"];
        let mut sorted = labels;
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
        let disabled = CacheSection {
            enabled: false,
            hits: 0,
            invalidated: 0,
            misses: 0,
            stored: 0,
        };
        assert_eq!(disabled.summary(), "cache: disabled");
    }

    #[test]
    fn fault_section_summary_is_deterministic_and_alphabetical() {
        let mut m = RunManifest::new("repro", "0.1.0", 42, "quick");
        assert_eq!(m.faults, None, "no section until the tool fills one in");
        let section = FaultSection {
            enabled: true,
            injected: 3,
            quarantined: 0,
            retried: 2,
        };
        m.faults = Some(section);
        assert_eq!(
            section.summary(),
            "faults: 3 injected, 0 quarantined, 2 retried"
        );
        let labels = ["injected", "quarantined", "retried"];
        let mut sorted = labels;
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
        let disabled = FaultSection {
            enabled: false,
            injected: 0,
            quarantined: 0,
            retried: 0,
        };
        assert_eq!(disabled.summary(), "faults: disabled");
    }

    #[test]
    fn stream_section_summary_is_deterministic_and_alphabetical() {
        let mut m = RunManifest::new("repro", "0.1.0", 42, "quick");
        assert_eq!(m.stream, None, "no section until the tool fills one in");
        let section = StreamSection {
            enabled: true,
            peak_live_samples: 5500,
            peak_shards_resident: 2,
            shards_streamed: 330,
        };
        m.stream = Some(section);
        assert_eq!(
            section.summary(),
            "stream: 5500 peak live samples, 2 peak shards resident, 330 shards streamed"
        );
        let labels = [
            "peak_live_samples",
            "peak_shards_resident",
            "shards_streamed",
        ];
        let mut sorted = labels;
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
        let disabled = StreamSection {
            enabled: false,
            peak_live_samples: 0,
            peak_shards_resident: 0,
            shards_streamed: 0,
        };
        assert_eq!(disabled.summary(), "stream: disabled");
    }

    #[test]
    fn distributed_section_summary_is_deterministic_and_alphabetical() {
        let mut m = RunManifest::new("repro", "0.1.0", 42, "quick");
        assert_eq!(
            m.distributed, None,
            "no section until the tool fills one in"
        );
        let section = DistributedSection {
            enabled: true,
            died: 2,
            duplicates: 1,
            quarantined: 0,
            reassigned: 3,
            spawned: 6,
            units: 16,
            workers: 4,
        };
        m.distributed = Some(section);
        assert_eq!(
            section.summary(),
            "distributed: 2 died, 1 duplicates, 0 quarantined, 3 reassigned, \
             6 spawned, 16 units, 4 workers"
        );
        let labels = [
            "died",
            "duplicates",
            "quarantined",
            "reassigned",
            "spawned",
            "units",
            "workers",
        ];
        let mut sorted = labels;
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
        let disabled = DistributedSection {
            enabled: false,
            died: 0,
            duplicates: 0,
            quarantined: 0,
            reassigned: 0,
            spawned: 0,
            units: 0,
            workers: 0,
        };
        assert_eq!(disabled.summary(), "distributed: disabled");
    }

    #[test]
    fn host_detection_is_populated() {
        let host = HostInfo::detect();
        assert!(!host.os.is_empty());
        assert!(!host.arch.is_empty());
        assert!(host.cpus >= 1);
        assert!(!host.hostname.is_empty());
    }
}
