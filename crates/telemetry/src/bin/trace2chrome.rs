//! Converts a `trace.json` written by `repro --trace` into
//! chrome://tracing / Perfetto JSON.
//!
//! ```text
//! trace2chrome trace.json > trace.chrome.json
//! trace2chrome trace.json trace.chrome.json
//! ```

use std::process::ExitCode;

const USAGE: &str = "\
usage: trace2chrome <trace.json> [out.json]

Converts a span trace written by `repro --trace` into the JSON object
format consumed by chrome://tracing and https://ui.perfetto.dev. With no
output path the converted trace goes to stdout.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.is_empty() || args.len() > 2 {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let input = &args[0];
    let payload = match std::fs::read_to_string(input) {
        Ok(p) => p,
        Err(err) => {
            eprintln!("cannot read {input}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let trace: telemetry::Trace = match serde_json::from_str(&payload) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("{input} is not a telemetry trace: {err}");
            return ExitCode::FAILURE;
        }
    };
    let chrome = telemetry::chrome::to_chrome_trace(&trace);
    let rendered = serde_json::to_string_pretty(&chrome).expect("chrome traces always serialize");
    match args.get(1) {
        Some(out) => {
            if let Err(err) = std::fs::write(out, rendered) {
                eprintln!("cannot write {out}: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out} ({} spans)", trace.len());
        }
        None => println!("{rendered}"),
    }
    ExitCode::SUCCESS
}
