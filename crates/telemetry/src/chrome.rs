//! Chrome trace-event export for assembled [`Trace`]s.
//!
//! [`to_chrome_trace`] converts a trace into the JSON object format
//! consumed by `chrome://tracing` and <https://ui.perfetto.dev>: one
//! complete (`"ph": "X"`) event per span with microsecond `ts`/`dur`,
//! grouped into tracks by the span's thread ordinal, plus one
//! `thread_name` metadata event per named thread so worker tracks read
//! `experiment-worker-0` instead of a bare ordinal. The span hierarchy is
//! preserved visually because the viewers stack events whose intervals
//! nest on the same track.
//!
//! The `trace2chrome` binary wraps this for `trace.json` files on disk,
//! and `repro --trace-chrome` emits the converted file directly.

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::trace::{SpanNode, Trace};

/// Converts an assembled trace to a chrome://tracing JSON object
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// Events appear in depth-first trace order; timestamps are microseconds
/// since the process telemetry epoch.
pub fn to_chrome_trace(trace: &Trace) -> Value {
    let mut events = Vec::new();
    let mut thread_names: BTreeMap<u64, String> = BTreeMap::new();
    trace.walk(|node| {
        events.push(span_event(node));
        if let Some(name) = &node.thread_name {
            thread_names
                .entry(node.thread)
                .or_insert_with(|| name.clone());
        }
    });
    for (tid, name) in thread_names {
        events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": json!({ "name": name }),
        }));
    }
    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    })
}

fn span_event(node: &SpanNode) -> Value {
    json!({
        "name": node.name.clone(),
        "ph": "X",
        "pid": 1,
        "tid": node.thread,
        "ts": node.start_secs * 1e6,
        "dur": node.duration_secs * 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{clear, current_context, drain, span, span_in};

    fn sample_trace() -> Trace {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(true);
        {
            let _root = span("root");
            let ctx = current_context();
            std::thread::Builder::new()
                .name("experiment-worker-0".to_string())
                .spawn(move || {
                    let _w = span_in("experiment.worker.0", ctx);
                    let _leaf = span("experiment.T1");
                })
                .unwrap()
                .join()
                .unwrap();
        }
        crate::set_enabled(false);
        drain()
    }

    #[test]
    fn every_span_becomes_a_complete_event() {
        let trace = sample_trace();
        let chrome = to_chrome_trace(&trace);
        let events = chrome["traceEvents"].as_array().unwrap();
        let complete: Vec<&Value> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(complete.len(), trace.len());
        for e in &complete {
            assert!(e["ts"].as_f64().unwrap() >= 0.0);
            assert!(e["dur"].as_f64().unwrap() >= 0.0);
            assert!(e["tid"].as_u64().unwrap() > 0);
        }
    }

    #[test]
    fn named_threads_get_metadata_events() {
        let chrome = to_chrome_trace(&sample_trace());
        let events = chrome["traceEvents"].as_array().unwrap();
        let meta: Vec<&Value> = events
            .iter()
            .filter(|e| e["ph"] == "M" && e["name"] == "thread_name")
            .collect();
        // The test harness names its own threads too, so look for the
        // worker's entry rather than assuming it is the only one.
        let worker_meta = meta
            .iter()
            .find(|e| e["args"]["name"] == "experiment-worker-0")
            .expect("worker thread gets a thread_name event");
        // The metadata tid matches the worker span's event tid.
        let worker = events
            .iter()
            .find(|e| e["name"] == "experiment.worker.0")
            .unwrap();
        assert_eq!(worker_meta["tid"], worker["tid"]);
    }

    #[test]
    fn child_intervals_nest_within_parents_in_microseconds() {
        let trace = sample_trace();
        let chrome = to_chrome_trace(&trace);
        let events = chrome["traceEvents"].as_array().unwrap();
        let find = |name: &str| {
            events
                .iter()
                .find(|e| e["name"] == name)
                .unwrap_or_else(|| panic!("missing event {name}"))
        };
        let root = find("root");
        let worker = find("experiment.worker.0");
        let eps = 1.0; // one microsecond of slack
        let end = |e: &Value| e["ts"].as_f64().unwrap() + e["dur"].as_f64().unwrap();
        assert!(worker["ts"].as_f64().unwrap() + eps >= root["ts"].as_f64().unwrap());
        assert!(end(worker) <= end(root) + eps);
    }

    #[test]
    fn empty_trace_converts_to_no_events() {
        let chrome = to_chrome_trace(&Trace::default());
        assert_eq!(chrome["traceEvents"].as_array().unwrap().len(), 0);
        assert_eq!(chrome["displayTimeUnit"], "ms");
    }
}
