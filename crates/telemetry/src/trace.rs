//! RAII wall-time spans forming a hierarchical trace tree.
//!
//! A [`Span`] measures the wall time between its creation and its drop.
//! Spans opened while another span is live **on the same thread** become
//! its children, so nesting scopes yields a tree without any explicit
//! plumbing. Finished spans are appended to a global collector;
//! [`drain`] assembles them into a [`Trace`] and empties the collector.
//!
//! While telemetry is disabled ([`crate::enabled`] is false), [`span`]
//! costs one relaxed atomic load and returns an inert guard.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A finished span as recorded by the collector (internal form).
struct RawSpan {
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    start_ns: u64,
    end_ns: u64,
    thread: u64,
    thread_name: Option<String>,
}

/// Monotonic clock origin shared by every span in the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn collector() -> MutexGuard<'static, Vec<RawSpan>> {
    static SPANS: OnceLock<Mutex<Vec<RawSpan>>> = OnceLock::new();
    SPANS
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Span ids start at 1; 0 means "no parent" (a root span).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Thread ordinals start at 1 and are assigned in first-span order.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost live span on this thread, or 0 at top level.
    static CURRENT: Cell<u64> = const { Cell::new(0) };

    /// This thread's telemetry identity: a process-unique ordinal plus
    /// the OS thread name, captured once on the thread's first span.
    static THREAD_INFO: (u64, Option<String>) = (
        NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        std::thread::current().name().map(str::to_string),
    );
}

fn thread_info() -> (u64, Option<String>) {
    THREAD_INFO.with(|t| (t.0, t.1.clone()))
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    /// CURRENT value to restore on drop (differs from `parent` for spans
    /// opened with an explicit cross-thread [`SpanContext`]).
    prev: u64,
    name: Cow<'static, str>,
    start_ns: u64,
}

/// RAII guard measuring the wall time of a scope; see [`span`].
///
/// Not `Send`: a span must be dropped on the thread that opened it so the
/// thread-local parent chain stays consistent (RAII scoping guarantees
/// this naturally).
pub struct Span {
    inner: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

/// A handle to a live span that can be passed to another thread so work
/// done there parents under it in the trace tree (see [`span_in`]).
///
/// Obtained from [`current_context`]. The default context parents at the
/// root, as does any context captured while telemetry is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext(u64);

/// The innermost live span on the calling thread, as a [`SpanContext`]
/// that other threads can parent their spans under.
pub fn current_context() -> SpanContext {
    SpanContext(CURRENT.with(|c| c.get()))
}

/// Opens a span named `name`; the returned guard records the scope's wall
/// time when dropped. Inert (one relaxed atomic load, no allocation) while
/// telemetry is disabled.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    open(name, None)
}

/// Opens a span parented under `context` instead of the calling thread's
/// innermost live span. This is how worker threads attach their spans to
/// the span that spawned them rather than surfacing as unlabeled roots.
/// Nested [`span`] calls on the worker thread parent under this span as
/// usual. Inert while telemetry is disabled.
pub fn span_in(name: impl Into<Cow<'static, str>>, context: SpanContext) -> Span {
    open(name, Some(context))
}

fn open(name: impl Into<Cow<'static, str>>, context: Option<SpanContext>) -> Span {
    if !crate::enabled() {
        return Span {
            inner: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.replace(id));
    let parent = context.map_or(prev, |ctx| ctx.0);
    Span {
        inner: Some(ActiveSpan {
            id,
            parent,
            prev,
            name: name.into(),
            start_ns: now_ns(),
        }),
        _not_send: PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let end_ns = now_ns();
            CURRENT.with(|c| c.set(active.prev));
            let (thread, thread_name) = thread_info();
            collector().push(RawSpan {
                id: active.id,
                parent: active.parent,
                name: active.name,
                start_ns: active.start_ns,
                end_ns,
                thread,
                thread_name,
            });
        }
    }
}

/// One node of an assembled trace tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name as passed to [`span`].
    pub name: String,
    /// Process-unique ordinal of the thread the span ran on, assigned in
    /// first-span order starting at 1 (0 only in traces predating thread
    /// attribution).
    #[serde(default)]
    pub thread: u64,
    /// OS name of that thread, when it had one (worker pools name their
    /// threads so trace tooling can group by worker).
    #[serde(default)]
    pub thread_name: Option<String>,
    /// Start time in seconds since the process telemetry epoch.
    pub start_secs: f64,
    /// Wall time between the span's open and drop, in seconds.
    pub duration_secs: f64,
    /// Spans opened (and closed) while this one was live, oldest first.
    pub children: Vec<SpanNode>,
}

/// A fully assembled trace: the forest of root spans, oldest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Top-level spans (no live parent on their thread when opened).
    pub roots: Vec<SpanNode>,
}

impl Trace {
    /// Total number of spans in the trace.
    pub fn len(&self) -> usize {
        fn count(nodes: &[SpanNode]) -> usize {
            nodes.iter().map(|n| 1 + count(&n.children)).sum()
        }
        count(&self.roots)
    }

    /// True when the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Depth-first walk over every node in the trace.
    pub fn walk(&self, mut visit: impl FnMut(&SpanNode)) {
        fn go(nodes: &[SpanNode], visit: &mut impl FnMut(&SpanNode)) {
            for n in nodes {
                visit(n);
                go(&n.children, visit);
            }
        }
        go(&self.roots, &mut visit);
    }
}

/// Removes all finished spans from the collector and assembles them into
/// a [`Trace`]. Spans whose parent is still live (not yet dropped) are
/// promoted to roots rather than lost.
pub fn drain() -> Trace {
    let raw: Vec<RawSpan> = std::mem::take(&mut *collector());
    build_tree(raw)
}

/// Discards all finished spans without assembling them.
pub fn clear() {
    collector().clear();
}

fn build_tree(mut raw: Vec<RawSpan>) -> Trace {
    // Children finish (and are pushed) before their parents, so sort by
    // start time to get stable oldest-first ordering at every level.
    raw.sort_by_key(|r| (r.start_ns, r.id));
    let present: HashMap<u64, usize> = raw.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, r) in raw.iter().enumerate() {
        if r.parent != 0 && present.contains_key(&r.parent) {
            children.entry(r.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    fn assemble(i: usize, raw: &[RawSpan], children: &HashMap<u64, Vec<usize>>) -> SpanNode {
        let r = &raw[i];
        let kids = children
            .get(&r.id)
            .map(|ks| ks.iter().map(|&k| assemble(k, raw, children)).collect())
            .unwrap_or_default();
        SpanNode {
            name: r.name.to_string(),
            thread: r.thread,
            thread_name: r.thread_name.clone(),
            start_secs: r.start_ns as f64 / 1e9,
            duration_secs: (r.end_ns - r.start_ns) as f64 / 1e9,
            children: kids,
        }
    }
    Trace {
        roots: roots
            .into_iter()
            .map(|i| assemble(i, &raw, &children))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(false);
        {
            let _a = span("a");
            let _b = span("b");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_builds_a_tree() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(true);
        {
            let _root = span("root");
            {
                let _first = span("first");
                let _leaf = span("leaf");
            }
            let _second = span("second");
        }
        crate::set_enabled(false);
        let trace = drain();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.roots.len(), 1);
        let root = &trace.roots[0];
        assert_eq!(root.name, "root");
        let kids: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["first", "second"]);
        assert_eq!(root.children[0].children[0].name, "leaf");
    }

    #[test]
    fn child_intervals_nest_within_parent() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(true);
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        crate::set_enabled(false);
        let trace = drain();
        let outer = &trace.roots[0];
        let inner = &outer.children[0];
        let eps = 1e-9;
        assert!(inner.start_secs + eps >= outer.start_secs);
        assert!(
            inner.start_secs + inner.duration_secs <= outer.start_secs + outer.duration_secs + eps
        );
        assert!(inner.duration_secs <= outer.duration_secs + eps);
        assert!(outer.duration_secs >= 0.004);
    }

    #[test]
    fn spans_from_other_threads_become_separate_roots() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(true);
        {
            let _main = span("main");
            std::thread::spawn(|| {
                let _worker = span("worker");
            })
            .join()
            .unwrap();
        }
        crate::set_enabled(false);
        let trace = drain();
        let names: Vec<&str> = trace.roots.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"main"));
        assert!(names.contains(&"worker"));
        assert!(trace.roots.iter().all(|r| r.children.is_empty()));
    }

    #[test]
    fn span_in_parents_worker_spans_under_the_spawning_span() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(true);
        {
            let _root = span("root");
            let ctx = current_context();
            std::thread::Builder::new()
                .name("pool-7".to_string())
                .spawn(move || {
                    let _w = span_in("worker", ctx);
                    let _leaf = span("leaf");
                })
                .unwrap()
                .join()
                .unwrap();
        }
        crate::set_enabled(false);
        let trace = drain();
        assert_eq!(trace.roots.len(), 1);
        let root = &trace.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 1);
        let worker = &root.children[0];
        assert_eq!(worker.name, "worker");
        assert_eq!(worker.thread_name.as_deref(), Some("pool-7"));
        assert_ne!(worker.thread, root.thread);
        assert_eq!(worker.children.len(), 1);
        let leaf = &worker.children[0];
        assert_eq!(leaf.name, "leaf");
        // Nested spans on the worker thread stay on the worker's chain.
        assert_eq!(leaf.thread, worker.thread);
    }

    #[test]
    fn every_span_carries_a_nonzero_thread_ordinal() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(true);
        {
            let _main = span("main");
            std::thread::spawn(|| {
                let _other = span("other");
            })
            .join()
            .unwrap();
        }
        crate::set_enabled(false);
        let trace = drain();
        let mut threads = Vec::new();
        trace.walk(|n| threads.push(n.thread));
        assert_eq!(threads.len(), 2);
        assert!(threads.iter().all(|&t| t > 0));
        assert_ne!(threads[0], threads[1]);
    }

    #[test]
    fn default_context_and_disabled_context_parent_at_the_root() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(false);
        let while_disabled = current_context();
        crate::set_enabled(true);
        {
            let _a = span_in("a", SpanContext::default());
            // `a` is live, but the explicit context still wins.
            let _b = span_in("b", while_disabled);
        }
        crate::set_enabled(false);
        let trace = drain();
        let names: Vec<&str> = trace.roots.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn orphaned_children_are_promoted_to_roots() {
        let _guard = crate::test_guard();
        clear();
        crate::set_enabled(true);
        let parent = span("parent");
        {
            let _child = span("child");
        }
        // Drain while the parent is still live: the child's parent id is
        // absent from the collector and the child must surface as a root.
        let trace = drain();
        crate::set_enabled(false);
        drop(parent);
        clear();
        assert_eq!(trace.roots.len(), 1);
        assert_eq!(trace.roots[0].name, "child");
    }
}
