//! Seeded, deterministic fault injection — the chaos harness.
//!
//! Long measurement campaigns on shared infrastructure lose machines,
//! hit I/O errors, and get killed mid-run; the recovery layer
//! (`dataset::journal`, the engine's retry loop) only earns trust if
//! those failure paths are exercised. A [`FaultPlan`] is a pure function
//! from a *site* — a stable string naming one failure point, e.g.
//! `campaign.machine.17` or `experiment.F9` — to a fault decision, so a
//! chaos run is exactly reproducible from its seed: the same seed injects
//! the same faults at the same sites no matter the worker count, thread
//! schedule, or how many times the run was killed and resumed on the way.
//!
//! Decisions hash `(seed, kind, site, attempt)` with FNV-1a and compare
//! against a per-mille rate. Nothing is stateful: two threads asking
//! about the same site get the same answer, and a resumed process
//! re-derives the plan from the seed alone.
//!
//! # The recovery guarantee
//!
//! [`FaultPlan::transient`] and [`FaultPlan::io_error`] never fire on
//! attempt [`MAX_FAULTS_PER_SITE`] or later, and the default
//! [`FaultPolicy`] retries exactly that many times — so an injected
//! transient fault is always survivable under the default policy, and a
//! chaos run that resumes to completion is byte-identical to a fault-free
//! run. Persistent failures (real bugs, real bad disks) still surface:
//! they are not attempt-limited and exhaust the retry budget.

use std::time::Duration;

/// Injected transient/I/O faults fire at most this many times per site.
/// Matches the default retry budget of [`FaultPolicy`], so default-policy
/// runs always recover from injected faults.
pub const MAX_FAULTS_PER_SITE: u32 = 2;

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms. Used
/// for fault decisions here and for content fingerprints in the journal
/// and artifact cache.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A seeded chaos plan: which fault fires at which site.
///
/// Rates are per-mille (0–1000). The plan is `Copy` and carries no
/// state; share it freely across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    transient_per_mille: u32,
    io_per_mille: u32,
    death_per_mille: u32,
    kill_per_mille: u32,
    stall_per_mille: u32,
    torn_per_mille: u32,
}

impl FaultPlan {
    /// A plan with the default rates: 300‰ transient machine faults,
    /// 250‰ I/O errors, 120‰ worker deaths, plus the process-level rates
    /// (200‰ worker kills, 60‰ heartbeat stalls, 80‰ torn handoffs) used
    /// by distributed collection.
    pub fn new(seed: u64) -> Self {
        Self::with_rates(seed, 300, 250, 120).with_process_rates(200, 60, 80)
    }

    /// A plan with explicit per-mille rates (each clamped to 1000) for
    /// the in-process fault kinds. Process-level rates start at zero;
    /// arm them with [`Self::with_process_rates`].
    pub fn with_rates(seed: u64, transient: u32, io: u32, death: u32) -> Self {
        FaultPlan {
            seed,
            transient_per_mille: transient.min(1000),
            io_per_mille: io.min(1000),
            death_per_mille: death.min(1000),
            kill_per_mille: 0,
            stall_per_mille: 0,
            torn_per_mille: 0,
        }
    }

    /// Arms the process-level fault kinds exercised by distributed
    /// collection: whole-worker kills (the process equivalent of
    /// [`Self::worker_death`]), heartbeat stalls (the worker goes silent
    /// long enough to be declared dead), and torn journal handoffs (a
    /// freshly committed shard is destroyed as the worker dies). Rates
    /// are per-mille, clamped to 1000.
    pub fn with_process_rates(mut self, kill: u32, stall: u32, torn: u32) -> Self {
        self.kill_per_mille = kill.min(1000);
        self.stall_per_mille = stall.min(1000);
        self.torn_per_mille = torn.min(1000);
        self
    }

    /// The chaos seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether a transient fault (a machine dropping out of a
    /// measurement, an experiment failing sporadically) fires at `site`
    /// on retry number `attempt`. Never fires once `attempt` reaches
    /// [`MAX_FAULTS_PER_SITE`].
    pub fn transient(&self, site: &str, attempt: u32) -> bool {
        attempt < MAX_FAULTS_PER_SITE
            && self.roll("transient", site, attempt, self.transient_per_mille)
    }

    /// Whether an I/O error (journal, cache, or artifact write) fires at
    /// `site` on retry number `attempt`. Never fires once `attempt`
    /// reaches [`MAX_FAULTS_PER_SITE`].
    pub fn io_error(&self, site: &str, attempt: u32) -> bool {
        attempt < MAX_FAULTS_PER_SITE && self.roll("io", site, attempt, self.io_per_mille)
    }

    /// Whether the worker dies at `site`. Unlike the transient/I/O
    /// decisions this is not attempt-limited: the caller must place
    /// death sites *after* a durable commit (e.g. right after a machine's
    /// shard is journaled), so every resumed run makes monotonic progress
    /// and never revisits a site that already killed it.
    pub fn worker_death(&self, site: &str) -> bool {
        self.roll("death", site, 0, self.death_per_mille)
    }

    /// Whether a whole worker *process* is killed at `site` on the
    /// unit's reassignment round `attempt`. Kill sites must sit after a
    /// durable commit (like [`Self::worker_death`]), and — because the
    /// supervisor bumps the unit's attempt counter on every reassignment
    /// — the attempt gate guarantees a unit stops being killed after
    /// [`MAX_FAULTS_PER_SITE`] rounds, so a bounded retry budget always
    /// converges.
    pub fn worker_kill(&self, site: &str, attempt: u32) -> bool {
        attempt < MAX_FAULTS_PER_SITE && self.roll("kill", site, attempt, self.kill_per_mille)
    }

    /// Whether a worker's heartbeat stalls at `site` on reassignment
    /// round `attempt`: the worker sleeps past the supervisor's staleness
    /// horizon without touching its lease, so a *live* worker is declared
    /// dead and its unit reassigned. Attempt-limited like
    /// [`Self::worker_kill`].
    pub fn heartbeat_stall(&self, site: &str, attempt: u32) -> bool {
        attempt < MAX_FAULTS_PER_SITE && self.roll("stall", site, attempt, self.stall_per_mille)
    }

    /// Whether a journal handoff is torn at `site` on reassignment round
    /// `attempt`: the worker dies *and* its just-committed shard is
    /// truncated mid-file, so the next claimant must detect the
    /// corruption (checksum) and re-collect rather than trust the bytes.
    /// Attempt-limited like [`Self::worker_kill`].
    pub fn torn_handoff(&self, site: &str, attempt: u32) -> bool {
        attempt < MAX_FAULTS_PER_SITE && self.roll("torn", site, attempt, self.torn_per_mille)
    }

    fn roll(&self, kind: &str, site: &str, attempt: u32, per_mille: u32) -> bool {
        let decision = format!(
            "chaos={}\nkind={kind}\nsite={site}\nattempt={attempt}\n",
            self.seed
        );
        fnv1a64(decision.as_bytes()) % 1000 < per_mille as u64
    }
}

/// How the pipeline reacts to transient failures: how often to retry and
/// how long to back off between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Retries after the first failure before giving up. The default (2)
    /// equals [`MAX_FAULTS_PER_SITE`], so injected faults always recover.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt (see
    /// [`FaultPolicy::backoff_for`]).
    pub backoff: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: MAX_FAULTS_PER_SITE,
            backoff: Duration::from_millis(25),
        }
    }
}

impl FaultPolicy {
    /// A policy with an explicit retry budget and base backoff.
    pub fn new(max_retries: u32, backoff: Duration) -> Self {
        FaultPolicy {
            max_retries,
            backoff,
        }
    }

    /// Exponential backoff before retry `attempt` (0-based), capped at
    /// 64x the base so a misconfigured budget cannot sleep forever.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff * 2u32.pow(attempt.min(6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::new(7);
        let b = FaultPlan::new(7);
        let c = FaultPlan::new(8);
        let mut agree = 0;
        let mut differ = 0;
        for site in 0..200 {
            let site = format!("campaign.machine.{site}");
            assert_eq!(a.transient(&site, 0), b.transient(&site, 0));
            assert_eq!(a.io_error(&site, 1), b.io_error(&site, 1));
            assert_eq!(a.worker_death(&site), b.worker_death(&site));
            if a.transient(&site, 0) == c.transient(&site, 0) {
                agree += 1;
            } else {
                differ += 1;
            }
        }
        assert!(differ > 0, "different seeds must differ somewhere");
        assert!(agree > 0);
    }

    #[test]
    fn rates_roughly_match_over_many_sites() {
        let plan = FaultPlan::with_rates(42, 300, 250, 120);
        let n = 10_000;
        let transient = (0..n)
            .filter(|i| plan.transient(&format!("s{i}"), 0))
            .count();
        let death = (0..n)
            .filter(|i| plan.worker_death(&format!("s{i}")))
            .count();
        // 300 per mille +- a generous tolerance.
        assert!((2_500..3_500).contains(&transient), "{transient}");
        assert!((800..1_600).contains(&death), "{death}");
    }

    #[test]
    fn injection_budget_respects_the_default_retry_budget() {
        // A plan at 1000 per mille fires on every eligible attempt, but
        // never on attempt MAX_FAULTS_PER_SITE — so the default policy
        // always reaches a fault-free attempt.
        let plan = FaultPlan::with_rates(1, 1000, 1000, 1000);
        let policy = FaultPolicy::default();
        for attempt in 0..MAX_FAULTS_PER_SITE {
            assert!(plan.transient("x", attempt));
            assert!(plan.io_error("x", attempt));
        }
        assert!(!plan.transient("x", MAX_FAULTS_PER_SITE));
        assert!(!plan.io_error("x", MAX_FAULTS_PER_SITE));
        assert!(policy.max_retries >= MAX_FAULTS_PER_SITE);
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::with_rates(9, 0, 0, 0);
        for i in 0..100 {
            let site = format!("s{i}");
            assert!(!plan.transient(&site, 0));
            assert!(!plan.io_error(&site, 0));
            assert!(!plan.worker_death(&site));
            assert!(!plan.worker_kill(&site, 0));
            assert!(!plan.heartbeat_stall(&site, 0));
            assert!(!plan.torn_handoff(&site, 0));
        }
    }

    #[test]
    fn with_rates_leaves_process_faults_disarmed() {
        // Pre-existing chaos tests built plans with `with_rates` and
        // never expected process-level faults; the builder must not arm
        // them retroactively.
        let plan = FaultPlan::with_rates(3, 1000, 1000, 1000);
        for i in 0..50 {
            let site = format!("s{i}");
            assert!(!plan.worker_kill(&site, 0));
            assert!(!plan.heartbeat_stall(&site, 0));
            assert!(!plan.torn_handoff(&site, 0));
        }
    }

    #[test]
    fn process_faults_are_attempt_limited_and_deterministic() {
        let plan = FaultPlan::with_rates(4, 0, 0, 0).with_process_rates(1000, 1000, 1000);
        for attempt in 0..MAX_FAULTS_PER_SITE {
            assert!(plan.worker_kill("u0.m1", attempt));
            assert!(plan.heartbeat_stall("u0.m1", attempt));
            assert!(plan.torn_handoff("u0.m1", attempt));
        }
        // Past the budget a unit can no longer be killed, stalled, or
        // torn — a bounded reassignment budget always converges.
        assert!(!plan.worker_kill("u0.m1", MAX_FAULTS_PER_SITE));
        assert!(!plan.heartbeat_stall("u0.m1", MAX_FAULTS_PER_SITE));
        assert!(!plan.torn_handoff("u0.m1", MAX_FAULTS_PER_SITE));
        // Deterministic: the same (seed, site, attempt) always agrees.
        let again = FaultPlan::with_rates(4, 0, 0, 0).with_process_rates(400, 400, 400);
        for i in 0..100 {
            let site = format!("u{i}.m{i}");
            assert_eq!(again.worker_kill(&site, 1), again.worker_kill(&site, 1));
        }
    }

    #[test]
    fn default_plan_arms_process_faults() {
        let plan = FaultPlan::new(42);
        let kills = (0..1000)
            .filter(|i| plan.worker_kill(&format!("u{i}.m{i}"), 0))
            .count();
        // 200 per mille +- a generous tolerance.
        assert!((120..300).contains(&kills), "{kills}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = FaultPolicy::new(3, Duration::from_millis(10));
        assert_eq!(policy.backoff_for(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(40));
        assert_eq!(policy.backoff_for(100), Duration::from_millis(640));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
