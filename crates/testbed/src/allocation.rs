//! Machine-allocation policies.
//!
//! A testbed user asking for "3 machines of type X" gets *some* 3 of the
//! fleet. Because machines of one type differ persistently (the hardware
//! lottery), the allocation policy leaks into every result: always
//! receiving the same first-k machines (sequential allocation) bakes
//! their particular lottery draw into the "type performance" estimate,
//! while random allocation turns machine identity into sampled noise —
//! which is why the paper recommends randomizing machine selection.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::machine::Machine;

/// How machines are picked from a type's fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Always the first `k` machines (what naive schedulers and habit
    /// produce).
    Sequential,
    /// A uniform random subset, reseeded per experiment.
    Random {
        /// Seed of the draw.
        seed: u64,
    },
    /// Evenly spaced across the fleet (a cheap stratification).
    Strided,
}

/// Picks `k` machines of `type_name` under `policy`.
///
/// Returns fewer than `k` machines if the fleet is smaller; an unknown
/// type yields an empty vector.
pub fn allocate<'a>(
    cluster: &'a Cluster,
    type_name: &str,
    k: usize,
    policy: AllocationPolicy,
) -> Vec<&'a Machine> {
    let fleet = cluster.machines_of_type(type_name);
    if fleet.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(fleet.len());
    match policy {
        AllocationPolicy::Sequential => fleet.into_iter().take(k).collect(),
        AllocationPolicy::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut indices: Vec<usize> = (0..fleet.len()).collect();
            // Partial Fisher-Yates.
            for i in 0..k {
                let j = rng.random_range(i..indices.len());
                indices.swap(i, j);
            }
            let mut picked: Vec<usize> = indices[..k].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| fleet[i]).collect()
        }
        AllocationPolicy::Strided => {
            let stride = fleet.len() as f64 / k as f64;
            (0..k)
                .map(|i| fleet[(i as f64 * stride) as usize])
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::catalog;
    use crate::temporal::Timeline;

    fn cluster() -> Cluster {
        Cluster::provision(catalog(), 0.2, Timeline::quiet(10.0), 3)
    }

    #[test]
    fn sequential_is_the_prefix() {
        let c = cluster();
        let fleet = c.machines_of_type("m400");
        let picked = allocate(&c, "m400", 3, AllocationPolicy::Sequential);
        assert_eq!(picked.len(), 3);
        for (p, f) in picked.iter().zip(fleet.iter()) {
            assert_eq!(p.id, f.id);
        }
    }

    #[test]
    fn random_is_seed_deterministic_and_varies_across_seeds() {
        let c = cluster();
        let a = allocate(&c, "m400", 5, AllocationPolicy::Random { seed: 1 });
        let b = allocate(&c, "m400", 5, AllocationPolicy::Random { seed: 1 });
        let ids = |v: &[&Machine]| v.iter().map(|m| m.id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        // Across many seeds, at least one draw differs from sequential.
        let sequential = ids(&allocate(&c, "m400", 5, AllocationPolicy::Sequential));
        let mut any_different = false;
        for seed in 0..20 {
            if ids(&allocate(&c, "m400", 5, AllocationPolicy::Random { seed })) != sequential {
                any_different = true;
                break;
            }
        }
        assert!(any_different);
    }

    #[test]
    fn random_draws_without_replacement() {
        let c = cluster();
        for seed in 0..10 {
            let picked = allocate(&c, "c220g2", 8, AllocationPolicy::Random { seed });
            let mut ids: Vec<u32> = picked.iter().map(|m| m.id.0).collect();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before);
        }
    }

    #[test]
    fn strided_spans_the_fleet() {
        let c = cluster();
        let fleet = c.machines_of_type("m400");
        let picked = allocate(&c, "m400", 4, AllocationPolicy::Strided);
        assert_eq!(picked.len(), 4);
        assert_eq!(picked[0].id, fleet[0].id);
        assert!(picked[3].id.0 > fleet[fleet.len() / 2].id.0);
    }

    #[test]
    fn edge_cases() {
        let c = cluster();
        assert!(allocate(&c, "no-such-type", 3, AllocationPolicy::Sequential).is_empty());
        assert!(allocate(&c, "m400", 0, AllocationPolicy::Sequential).is_empty());
        let fleet_size = c.machines_of_type("r320").len();
        let picked = allocate(&c, "r320", 10_000, AllocationPolicy::Random { seed: 2 });
        assert_eq!(picked.len(), fleet_size);
    }
}
