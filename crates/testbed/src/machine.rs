//! Individual machines and the hardware lottery.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::hardware::{MachineType, Subsystem};
use crate::variation::default_variation;

/// Opaque machine identifier, unique within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{:04}", self.0)
    }
}

/// One provisioned machine: a machine type plus its per-unit lottery
/// factors, drawn once at provisioning time.
///
/// Two machines of the same type therefore have *persistently* different
/// performance — the inter-machine variability the paper quantifies at up
/// to ~10%.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Unique id.
    pub id: MachineId,
    /// Name of the machine's type (index into the catalog).
    pub type_name: String,
    /// Per-subsystem multiplicative lottery factors (indexed by
    /// [`Subsystem::index`]).
    unit_factors: [f64; 6],
}

impl Machine {
    /// Provisions a machine of `mtype`, drawing its lottery factors from
    /// a deterministic RNG derived from `cluster_seed` and `id`.
    pub fn provision(mtype: &MachineType, id: MachineId, cluster_seed: u64) -> Self {
        // Mix the cluster seed with the machine id (splitmix-style) so
        // every machine gets an independent, reproducible stream.
        let seed = cluster_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.0 as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut unit_factors = [1.0; 6];
        for s in Subsystem::ALL {
            let v = default_variation(s, mtype.disk);
            unit_factors[s.index()] = v.unit_lottery.sample(&mut rng).max(1e-6);
        }
        Self {
            id,
            type_name: mtype.name.clone(),
            unit_factors,
        }
    }

    /// The machine's lottery factor for one subsystem.
    pub fn unit_factor(&self, subsystem: Subsystem) -> f64 {
        self.unit_factors[subsystem.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::catalog;

    #[test]
    fn provisioning_is_deterministic() {
        let cat = catalog();
        let a = Machine::provision(&cat[0], MachineId(7), 42);
        let b = Machine::provision(&cat[0], MachineId(7), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_ids_draw_different_lotteries() {
        let cat = catalog();
        let a = Machine::provision(&cat[0], MachineId(1), 42);
        let b = Machine::provision(&cat[0], MachineId(2), 42);
        assert_ne!(
            a.unit_factor(Subsystem::MemoryBandwidth),
            b.unit_factor(Subsystem::MemoryBandwidth)
        );
    }

    #[test]
    fn different_seeds_draw_different_lotteries() {
        let cat = catalog();
        let a = Machine::provision(&cat[0], MachineId(1), 42);
        let b = Machine::provision(&cat[0], MachineId(1), 43);
        assert_ne!(
            a.unit_factor(Subsystem::DiskSequential),
            b.unit_factor(Subsystem::DiskSequential)
        );
    }

    #[test]
    fn lottery_factors_are_near_one() {
        let cat = catalog();
        for i in 0..200u32 {
            let m = Machine::provision(&cat[3], MachineId(i), 7);
            for s in Subsystem::ALL {
                let f = m.unit_factor(s);
                assert!((0.7..1.3).contains(&f), "{s:?} factor {f}");
            }
        }
    }

    #[test]
    fn same_type_machines_spread_up_to_ten_percent() {
        // The paper attributes up to ~10% to hardware differences among
        // same-type machines; the memory lottery's worst cluster sits
        // about 8% below nominal.
        let cat = catalog();
        let factors: Vec<f64> = (0..500u32)
            .map(|i| {
                Machine::provision(&cat[5], MachineId(i), 11)
                    .unit_factor(Subsystem::MemoryBandwidth)
            })
            .collect();
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let spread = (max - min) / max;
        assert!((0.04..0.15).contains(&spread), "spread {spread}");
    }

    #[test]
    fn display_format() {
        assert_eq!(MachineId(3).to_string(), "node-0003");
    }
}
