//! Per-subsystem variability models.
//!
//! The paper's central empirical facts, encoded as distributions:
//!
//! * **Disks vary most** — lognormal run noise with CoV of several
//!   percent on HDDs (seek/rotational nondeterminism), plus occasional
//!   large outliers; random I/O is worse than sequential; SSDs are
//!   tighter but suffer GC-pause outliers.
//! * **Memory varies little per run but is multimodal across machines** —
//!   per-unit "lottery" (DIMM placement, vendor mix, NUMA asymmetry)
//!   forms clusters a few percent apart, so same-type machines disagree
//!   even though each machine alone is tight.
//! * **Network throughput is the most stable subsystem**; latency is
//!   right-skewed with a heavy tail (queueing).
//!
//! Every factor is multiplicative around 1.0 so it can scale any
//! baseline. All parameters live in one place so ablations can sweep
//! them.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::distributions::Dist;
use crate::hardware::{DiskKind, Subsystem};

/// The variability model of one subsystem on one machine type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemVariation {
    /// Per-unit multiplicative factor, sampled once when a machine is
    /// provisioned (the "hardware lottery").
    pub unit_lottery: Dist,
    /// Per-run multiplicative noise.
    pub run_noise: Dist,
    /// Probability that a run is an outlier.
    pub outlier_prob: f64,
    /// Multiplicative factor applied to outlier runs (relative to the
    /// normal value; `> 1` hurts throughput-style metrics too because the
    /// sign convention is handled by the caller via the subsystem's
    /// direction).
    pub outlier_factor: Dist,
    /// Multiplicative drift per simulated day (aging / fragmentation).
    pub drift_per_day: f64,
}

impl SubsystemVariation {
    /// Samples the per-run factor (noise plus possible outlier) at a
    /// given `day`.
    pub fn run_factor(&self, day: f64, rng: &mut StdRng) -> f64 {
        use rand::RngExt;
        let mut f = self.run_noise.sample(rng).max(1e-6);
        if self.outlier_prob > 0.0 && rng.random::<f64>() < self.outlier_prob {
            f *= self.outlier_factor.sample(rng).max(1e-6);
        }
        f * (1.0 + self.drift_per_day * day)
    }
}

/// Default variability model for a subsystem on a machine with the given
/// disk technology.
///
/// The parameters are calibrated to the magnitudes the paper reports:
/// CoV(disk, HDD) in the several-percent range and far above
/// CoV(network throughput); memory lotteries spreading same-type machines
/// by up to ~10%; latency tails heavy.
pub fn default_variation(subsystem: Subsystem, disk: DiskKind) -> SubsystemVariation {
    match subsystem {
        Subsystem::MemoryBandwidth => SubsystemVariation {
            // Most machines cluster at nominal; ~20% drew a worse DIMM
            // configuration ~3.5% down; a few percent are ~8% down. This
            // produces the multimodal cross-machine histograms (F2).
            unit_lottery: Dist::Mixture(vec![
                (
                    0.77,
                    Dist::Normal {
                        mean: 1.0,
                        std: 0.006,
                    },
                ),
                (
                    0.20,
                    Dist::Normal {
                        mean: 0.965,
                        std: 0.006,
                    },
                ),
                (
                    0.03,
                    Dist::Normal {
                        mean: 0.92,
                        std: 0.008,
                    },
                ),
            ]),
            run_noise: Dist::rel_normal(0.004),
            outlier_prob: 0.002,
            outlier_factor: Dist::Uniform { lo: 0.93, hi: 0.97 },
            drift_per_day: 0.0,
        },
        Subsystem::MemoryLatency => SubsystemVariation {
            unit_lottery: Dist::Mixture(vec![
                (
                    0.8,
                    Dist::Normal {
                        mean: 1.0,
                        std: 0.008,
                    },
                ),
                (
                    0.2,
                    Dist::Normal {
                        mean: 1.04,
                        std: 0.008,
                    },
                ),
            ]),
            run_noise: Dist::rel_lognormal(0.006),
            outlier_prob: 0.004,
            outlier_factor: Dist::Uniform { lo: 1.05, hi: 1.2 },
            drift_per_day: 0.0,
        },
        Subsystem::DiskSequential => match disk {
            DiskKind::Hdd => SubsystemVariation {
                unit_lottery: Dist::Normal {
                    mean: 1.0,
                    std: 0.035,
                },
                run_noise: Dist::rel_lognormal(0.045),
                outlier_prob: 0.02,
                outlier_factor: Dist::Uniform { lo: 0.55, hi: 0.85 },
                drift_per_day: -4e-5,
            },
            DiskKind::Ssd | DiskKind::Nvme => SubsystemVariation {
                unit_lottery: Dist::Normal {
                    mean: 1.0,
                    std: 0.015,
                },
                run_noise: Dist::rel_lognormal(0.012),
                outlier_prob: 0.01,
                outlier_factor: Dist::Uniform { lo: 0.7, hi: 0.9 },
                drift_per_day: -1.5e-5,
            },
        },
        Subsystem::DiskRandom => match disk {
            DiskKind::Hdd => SubsystemVariation {
                unit_lottery: Dist::Normal {
                    mean: 1.0,
                    std: 0.05,
                },
                run_noise: Dist::rel_lognormal(0.09),
                outlier_prob: 0.03,
                outlier_factor: Dist::Uniform { lo: 0.4, hi: 0.8 },
                drift_per_day: -6e-5,
            },
            DiskKind::Ssd | DiskKind::Nvme => SubsystemVariation {
                unit_lottery: Dist::Normal {
                    mean: 1.0,
                    std: 0.02,
                },
                run_noise: Dist::rel_lognormal(0.025),
                outlier_prob: 0.02,
                outlier_factor: Dist::Uniform { lo: 0.5, hi: 0.85 },
                drift_per_day: -2e-5,
            },
        },
        Subsystem::NetworkLatency => SubsystemVariation {
            unit_lottery: Dist::Normal {
                mean: 1.0,
                std: 0.01,
            },
            // Right-skewed base noise plus a Pareto queueing tail.
            run_noise: Dist::rel_lognormal(0.03),
            outlier_prob: 0.03,
            outlier_factor: Dist::Pareto {
                scale: 1.2,
                shape: 2.5,
            },
            drift_per_day: 0.0,
        },
        Subsystem::NetworkBandwidth => SubsystemVariation {
            unit_lottery: Dist::Normal {
                mean: 1.0,
                std: 0.002,
            },
            run_noise: Dist::rel_normal(0.003),
            outlier_prob: 0.001,
            outlier_factor: Dist::Uniform { lo: 0.93, hi: 0.98 },
            drift_per_day: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cov_of_run_factors(subsystem: Subsystem, disk: DiskKind, seed: u64) -> f64 {
        let v = default_variation(subsystem, disk);
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..20_000).map(|_| v.run_factor(0.0, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    }

    #[test]
    fn disk_is_most_variable_network_bw_least() {
        let disk_rand = cov_of_run_factors(Subsystem::DiskRandom, DiskKind::Hdd, 1);
        let disk_seq = cov_of_run_factors(Subsystem::DiskSequential, DiskKind::Hdd, 2);
        let mem = cov_of_run_factors(Subsystem::MemoryBandwidth, DiskKind::Hdd, 3);
        let net_bw = cov_of_run_factors(Subsystem::NetworkBandwidth, DiskKind::Hdd, 4);
        assert!(disk_rand > disk_seq, "rand {disk_rand} vs seq {disk_seq}");
        assert!(disk_seq > mem, "seq {disk_seq} vs mem {mem}");
        assert!(mem > net_bw, "mem {mem} vs net {net_bw}");
        // Magnitudes in the paper's ballpark.
        assert!(disk_rand > 0.05, "{disk_rand}");
        assert!(net_bw < 0.01, "{net_bw}");
    }

    #[test]
    fn hdd_noisier_than_ssd() {
        let hdd = cov_of_run_factors(Subsystem::DiskSequential, DiskKind::Hdd, 5);
        let ssd = cov_of_run_factors(Subsystem::DiskSequential, DiskKind::Ssd, 6);
        assert!(hdd > 2.0 * ssd, "hdd {hdd} vs ssd {ssd}");
    }

    #[test]
    fn latency_tail_is_heavy() {
        let v = default_variation(Subsystem::NetworkLatency, DiskKind::Ssd);
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| v.run_factor(0.0, &mut rng)).collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let p999 = sorted[(sorted.len() as f64 * 0.999) as usize];
        assert!(p999 / median > 1.3, "tail ratio {}", p999 / median);
    }

    #[test]
    fn memory_lottery_is_multimodal() {
        let v = default_variation(Subsystem::MemoryBandwidth, DiskKind::Hdd);
        let mut rng = StdRng::seed_from_u64(8);
        let lots: Vec<f64> = (0..5_000)
            .map(|_| v.unit_lottery.sample(&mut rng))
            .collect();
        let near_nominal = lots.iter().filter(|&&x| x > 0.985).count() as f64;
        let degraded = lots.iter().filter(|&&x| x <= 0.985).count() as f64;
        let frac_degraded = degraded / (near_nominal + degraded);
        assert!(
            (0.15..0.35).contains(&frac_degraded),
            "degraded fraction {frac_degraded}"
        );
    }

    #[test]
    fn drift_moves_the_run_factor() {
        let v = default_variation(Subsystem::DiskSequential, DiskKind::Hdd);
        let mut rng = StdRng::seed_from_u64(9);
        let day0: f64 = (0..5000).map(|_| v.run_factor(0.0, &mut rng)).sum::<f64>() / 5000.0;
        let day300: f64 = (0..5000)
            .map(|_| v.run_factor(300.0, &mut rng))
            .sum::<f64>()
            / 5000.0;
        assert!(day300 < day0, "aging should reduce throughput factors");
    }

    #[test]
    fn run_factors_are_positive() {
        for s in Subsystem::ALL {
            for disk in [DiskKind::Hdd, DiskKind::Ssd, DiskKind::Nvme] {
                let v = default_variation(s, disk);
                let mut rng = StdRng::seed_from_u64(10);
                for _ in 0..2000 {
                    assert!(v.run_factor(10.0, &mut rng) > 0.0);
                }
            }
        }
    }
}
