//! Hand-rolled sampling distributions.
//!
//! The testbed needs the distribution families the paper observed in real
//! hardware — lognormal disk noise, mixture-of-normals memory lotteries,
//! heavy (Pareto) latency tails — and `rand` alone only provides uniform
//! bits. Everything else is built here (Box–Muller, inverse-CDF
//! exponential, inverse-CDF Pareto, weighted mixtures), deterministic
//! under a seeded [`StdRng`].

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A sampleable distribution over `f64`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use testbed::Dist;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let d = Dist::Normal { mean: 10.0, std: 2.0 };
/// let x = d.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Normal (Gaussian) via Box–Muller.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Lognormal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Exponential with rate `lambda` (mean `1/lambda`).
    Exponential {
        /// Rate parameter.
        rate: f64,
    },
    /// Pareto with minimum `scale` and tail index `shape` (heavier tail
    /// for smaller `shape`).
    Pareto {
        /// Minimum value.
        scale: f64,
        /// Tail index.
        shape: f64,
    },
    /// Weighted mixture of component distributions.
    Mixture(Vec<(f64, Dist)>),
}

impl Dist {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
            Dist::Normal { mean, std } => {
                let u1: f64 = rng.random::<f64>().max(1e-300);
                let u2: f64 = rng.random::<f64>();
                mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            }
            Dist::LogNormal { mu, sigma } => {
                let n = Dist::Normal {
                    mean: *mu,
                    std: *sigma,
                };
                n.sample(rng).exp()
            }
            Dist::Exponential { rate } => {
                let u: f64 = rng.random::<f64>().max(1e-300);
                -u.ln() / rate
            }
            Dist::Pareto { scale, shape } => {
                let u: f64 = rng.random::<f64>().max(1e-300);
                scale / u.powf(1.0 / shape)
            }
            Dist::Mixture(components) => {
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                let mut pick = rng.random::<f64>() * total;
                for (w, d) in components {
                    if pick < *w {
                        return d.sample(rng);
                    }
                    pick -= w;
                }
                components
                    .last()
                    .map(|(_, d)| d.sample(rng))
                    .unwrap_or(f64::NAN)
            }
        }
    }

    /// Theoretical mean of the distribution (used by tests and calibration;
    /// for Pareto with `shape <= 1` the mean is infinite and `f64::INFINITY`
    /// is returned).
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => *mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::Pareto { scale, shape } => {
                if *shape <= 1.0 {
                    f64::INFINITY
                } else {
                    shape * scale / (shape - 1.0)
                }
            }
            Dist::Mixture(components) => {
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                components.iter().map(|(w, d)| w / total * d.mean()).sum()
            }
        }
    }

    /// A multiplicative-noise helper: a normal centered on 1.0 with
    /// relative standard deviation `rel_std`.
    pub fn rel_normal(rel_std: f64) -> Dist {
        Dist::Normal {
            mean: 1.0,
            std: rel_std,
        }
    }

    /// A multiplicative lognormal centered (in median) on 1.0 with shape
    /// `sigma`.
    pub fn rel_lognormal(sigma: f64) -> Dist {
        Dist::LogNormal { mu: 0.0, sigma }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draw(d: &Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn constant_is_constant() {
        let xs = draw(&Dist::Constant(3.5), 10, 1);
        assert!(xs.iter().all(|&x| x == 3.5));
        assert_eq!(Dist::Constant(3.5).mean(), 3.5);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let xs = draw(&d, 5000, 2);
        assert!(xs.iter().all(|&x| (2.0..4.0).contains(&x)));
        assert!((mean(&xs) - 3.0).abs() < 0.05);
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Dist::Normal {
            mean: 100.0,
            std: 5.0,
        };
        let xs = draw(&d, 20000, 3);
        assert!((mean(&xs) - 100.0).abs() < 0.2);
        let var = xs.iter().map(|x| (x - 100.0) * (x - 100.0)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 5.0).abs() < 0.2);
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let d = Dist::LogNormal {
            mu: 0.0,
            sigma: 0.5,
        };
        let mut xs = draw(&d, 20001, 4);
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!((mean(&xs) - d.mean()).abs() < 0.05);
    }

    #[test]
    fn exponential_mean() {
        let d = Dist::Exponential { rate: 0.5 };
        let xs = draw(&d, 20000, 5);
        assert!(xs.iter().all(|&x| x >= 0.0));
        assert!((mean(&xs) - 2.0).abs() < 0.1);
    }

    #[test]
    fn pareto_minimum_and_tail() {
        let d = Dist::Pareto {
            scale: 1.0,
            shape: 3.0,
        };
        let xs = draw(&d, 20000, 6);
        assert!(xs.iter().all(|&x| x >= 1.0));
        assert!((mean(&xs) - 1.5).abs() < 0.1);
        assert_eq!(
            Dist::Pareto {
                scale: 1.0,
                shape: 0.5
            }
            .mean(),
            f64::INFINITY
        );
    }

    #[test]
    fn mixture_weights_respected() {
        let d = Dist::Mixture(vec![(0.9, Dist::Constant(0.0)), (0.1, Dist::Constant(1.0))]);
        let xs = draw(&d, 20000, 7);
        let frac_ones = xs.iter().filter(|&&x| x == 1.0).count() as f64 / xs.len() as f64;
        assert!((frac_ones - 0.1).abs() < 0.01, "{frac_ones}");
        assert!((d.mean() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mixture_creates_bimodality() {
        let d = Dist::Mixture(vec![
            (
                0.5,
                Dist::Normal {
                    mean: 0.0,
                    std: 0.5,
                },
            ),
            (
                0.5,
                Dist::Normal {
                    mean: 10.0,
                    std: 0.5,
                },
            ),
        ]);
        let xs = draw(&d, 2000, 8);
        let near_zero = xs.iter().filter(|&&x| x.abs() < 2.0).count();
        let near_ten = xs.iter().filter(|&&x| (x - 10.0).abs() < 2.0).count();
        assert!(near_zero > 800 && near_ten > 800);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Dist::LogNormal {
            mu: 1.0,
            sigma: 0.3,
        };
        assert_eq!(draw(&d, 100, 9), draw(&d, 100, 9));
        assert_ne!(draw(&d, 100, 9), draw(&d, 100, 10));
    }

    #[test]
    fn helpers_center_on_one() {
        let xs = draw(&Dist::rel_normal(0.01), 10000, 11);
        assert!((mean(&xs) - 1.0).abs() < 0.01);
        let xs = draw(&Dist::rel_lognormal(0.05), 10000, 12);
        assert!((mean(&xs) - 1.0).abs() < 0.02);
    }
}
