//! The hardware catalog.
//!
//! A fleet of machine types modeled on the CloudLab hardware the paper's
//! campaign ran on (Utah / Wisconsin / Clemson sites). Counts and nominal
//! performance figures are representative, not exact datasheet copies —
//! what matters to the reproduction is heterogeneity across types and the
//! per-subsystem baselines each type contributes.

use serde::{Deserialize, Serialize};

/// Persistent-storage technology of a machine type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskKind {
    /// Spinning disk: the most variable subsystem in the study.
    Hdd,
    /// SATA SSD.
    Ssd,
    /// NVMe flash.
    Nvme,
}

impl DiskKind {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            DiskKind::Hdd => "HDD",
            DiskKind::Ssd => "SSD",
            DiskKind::Nvme => "NVMe",
        }
    }
}

/// The subsystems whose performance the campaign measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subsystem {
    /// Memory bandwidth (STREAM-style).
    MemoryBandwidth,
    /// Memory access latency (pointer chasing).
    MemoryLatency,
    /// Sequential disk throughput.
    DiskSequential,
    /// Random disk throughput.
    DiskRandom,
    /// Network round-trip latency.
    NetworkLatency,
    /// Network bulk throughput.
    NetworkBandwidth,
}

impl Subsystem {
    /// All subsystems, in display order.
    pub const ALL: [Subsystem; 6] = [
        Subsystem::MemoryBandwidth,
        Subsystem::MemoryLatency,
        Subsystem::DiskSequential,
        Subsystem::DiskRandom,
        Subsystem::NetworkLatency,
        Subsystem::NetworkBandwidth,
    ];

    /// Index into per-machine factor arrays.
    pub fn index(&self) -> usize {
        match self {
            Subsystem::MemoryBandwidth => 0,
            Subsystem::MemoryLatency => 1,
            Subsystem::DiskSequential => 2,
            Subsystem::DiskRandom => 3,
            Subsystem::NetworkLatency => 4,
            Subsystem::NetworkBandwidth => 5,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Subsystem::MemoryBandwidth => "mem-bw",
            Subsystem::MemoryLatency => "mem-lat",
            Subsystem::DiskSequential => "disk-seq",
            Subsystem::DiskRandom => "disk-rand",
            Subsystem::NetworkLatency => "net-lat",
            Subsystem::NetworkBandwidth => "net-bw",
        }
    }

    /// Whether larger measurements are better (throughput) or worse
    /// (latency).
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, Subsystem::MemoryLatency | Subsystem::NetworkLatency)
    }
}

/// A machine type in the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineType {
    /// Type name (CloudLab-style, e.g. `c220g1`).
    pub name: String,
    /// Site hosting the type.
    pub site: String,
    /// CPU model string.
    pub cpu: String,
    /// Physical core count.
    pub cores: u32,
    /// Nominal clock in GHz.
    pub base_ghz: f64,
    /// Installed RAM in GiB.
    pub ram_gb: u32,
    /// Storage technology.
    pub disk: DiskKind,
    /// NIC speed in Gb/s.
    pub nic_gbps: u32,
    /// Number of machines of this type in the fleet.
    pub count: usize,
    /// Nominal memory bandwidth (MB/s, STREAM triad scale).
    pub mem_bw_mbps: f64,
    /// Nominal memory latency (ns).
    pub mem_lat_ns: f64,
    /// Nominal sequential disk throughput (MB/s).
    pub disk_seq_mbps: f64,
    /// Nominal random-I/O throughput (MB/s at 4k).
    pub disk_rand_mbps: f64,
    /// Nominal network round-trip latency (us).
    pub net_lat_us: f64,
    /// Nominal network throughput (Mb/s).
    pub net_bw_mbps: f64,
}

impl MachineType {
    /// Nominal (baseline) value for a subsystem.
    pub fn baseline(&self, subsystem: Subsystem) -> f64 {
        match subsystem {
            Subsystem::MemoryBandwidth => self.mem_bw_mbps,
            Subsystem::MemoryLatency => self.mem_lat_ns,
            Subsystem::DiskSequential => self.disk_seq_mbps,
            Subsystem::DiskRandom => self.disk_rand_mbps,
            Subsystem::NetworkLatency => self.net_lat_us,
            Subsystem::NetworkBandwidth => self.net_bw_mbps,
        }
    }
}

/// Builds one machine type entry.
#[allow(clippy::too_many_arguments)]
fn mt(
    name: &str,
    site: &str,
    cpu: &str,
    cores: u32,
    base_ghz: f64,
    ram_gb: u32,
    disk: DiskKind,
    nic_gbps: u32,
    count: usize,
    mem_bw_mbps: f64,
    mem_lat_ns: f64,
    disk_seq_mbps: f64,
    disk_rand_mbps: f64,
    net_lat_us: f64,
    net_bw_mbps: f64,
) -> MachineType {
    MachineType {
        name: name.to_string(),
        site: site.to_string(),
        cpu: cpu.to_string(),
        cores,
        base_ghz,
        ram_gb,
        disk,
        nic_gbps,
        count,
        mem_bw_mbps,
        mem_lat_ns,
        disk_seq_mbps,
        disk_rand_mbps,
        net_lat_us,
        net_bw_mbps,
    }
}

/// The default fleet: ten machine types across three sites, ~900 machines
/// total, mirroring the scale and diversity of the paper's campaign.
pub fn catalog() -> Vec<MachineType> {
    vec![
        mt(
            "m400",
            "utah",
            "ARM Cortex-A57 (X-Gene)",
            8,
            2.4,
            64,
            DiskKind::Ssd,
            10,
            180,
            8_800.0,
            110.0,
            410.0,
            240.0,
            28.0,
            9_400.0,
        ),
        mt(
            "m510",
            "utah",
            "Intel Xeon D-1548",
            8,
            2.0,
            64,
            DiskKind::Nvme,
            10,
            120,
            14_500.0,
            92.0,
            1_150.0,
            620.0,
            22.0,
            9_400.0,
        ),
        mt(
            "xl170",
            "utah",
            "Intel E5-2640 v4",
            10,
            2.4,
            64,
            DiskKind::Ssd,
            25,
            80,
            17_200.0,
            85.0,
            480.0,
            300.0,
            14.0,
            23_500.0,
        ),
        mt(
            "d430",
            "emulab",
            "Intel E5-2630 v3",
            16,
            2.4,
            64,
            DiskKind::Hdd,
            10,
            80,
            16_100.0,
            88.0,
            165.0,
            1.8,
            25.0,
            9_400.0,
        ),
        mt(
            "d710",
            "emulab",
            "Intel Xeon E5530",
            4,
            2.4,
            12,
            DiskKind::Hdd,
            1,
            80,
            7_400.0,
            105.0,
            120.0,
            1.2,
            85.0,
            940.0,
        ),
        mt(
            "c220g1",
            "wisconsin",
            "Intel E5-2630 v3",
            16,
            2.4,
            128,
            DiskKind::Hdd,
            10,
            90,
            16_300.0,
            87.0,
            170.0,
            1.9,
            24.0,
            9_400.0,
        ),
        mt(
            "c220g2",
            "wisconsin",
            "Intel E5-2660 v3",
            20,
            2.6,
            160,
            DiskKind::Hdd,
            10,
            100,
            17_000.0,
            84.0,
            175.0,
            2.0,
            23.0,
            9_400.0,
        ),
        mt(
            "c6220",
            "clemson",
            "Intel E5-2660 v2",
            16,
            2.2,
            256,
            DiskKind::Hdd,
            40,
            60,
            15_200.0,
            95.0,
            155.0,
            1.7,
            18.0,
            37_000.0,
        ),
        mt(
            "c8220",
            "clemson",
            "Intel E5-2660 v2",
            20,
            2.2,
            256,
            DiskKind::Hdd,
            40,
            70,
            15_400.0,
            94.0,
            158.0,
            1.7,
            18.0,
            37_000.0,
        ),
        mt(
            "r320",
            "emulab",
            "Intel E5-2450",
            8,
            2.1,
            16,
            DiskKind::Hdd,
            1,
            33,
            11_900.0,
            98.0,
            140.0,
            1.5,
            90.0,
            940.0,
        ),
    ]
}

/// Looks up a machine type by name in a catalog slice.
pub fn find_type<'a>(catalog: &'a [MachineType], name: &str) -> Option<&'a MachineType> {
    catalog.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_types_and_realistic_fleet() {
        let cat = catalog();
        assert_eq!(cat.len(), 10);
        let total: usize = cat.iter().map(|t| t.count).sum();
        assert!((800..=1_000).contains(&total), "fleet size {total}");
    }

    #[test]
    fn catalog_names_are_unique() {
        let cat = catalog();
        let mut names: Vec<&str> = cat.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn catalog_spans_disk_kinds_and_sites() {
        let cat = catalog();
        assert!(cat.iter().any(|t| t.disk == DiskKind::Hdd));
        assert!(cat.iter().any(|t| t.disk == DiskKind::Ssd));
        assert!(cat.iter().any(|t| t.disk == DiskKind::Nvme));
        let sites: std::collections::HashSet<&str> = cat.iter().map(|t| t.site.as_str()).collect();
        assert!(sites.len() >= 3);
    }

    #[test]
    fn baselines_are_positive_and_consistent() {
        for t in catalog() {
            for s in Subsystem::ALL {
                assert!(t.baseline(s) > 0.0, "{} {s:?}", t.name);
            }
            // Random I/O on spinning disks is orders of magnitude below
            // sequential.
            if t.disk == DiskKind::Hdd {
                assert!(t.disk_rand_mbps < t.disk_seq_mbps / 10.0, "{}", t.name);
            }
        }
    }

    #[test]
    fn find_type_works() {
        let cat = catalog();
        assert!(find_type(&cat, "c220g1").is_some());
        assert_eq!(find_type(&cat, "c220g1").unwrap().site, "wisconsin");
        assert!(find_type(&cat, "does-not-exist").is_none());
    }

    #[test]
    fn subsystem_indices_are_a_permutation() {
        let mut seen = [false; 6];
        for s in Subsystem::ALL {
            assert!(!seen[s.index()]);
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn direction_flags() {
        assert!(Subsystem::MemoryBandwidth.higher_is_better());
        assert!(!Subsystem::MemoryLatency.higher_is_better());
        assert!(!Subsystem::NetworkLatency.higher_is_better());
        assert!(Subsystem::NetworkBandwidth.higher_is_better());
    }
}
