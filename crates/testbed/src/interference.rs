//! Multi-tenant interference.
//!
//! Shared testbeds are not quiet: co-located tenants contend for memory
//! bandwidth, disk queues, and switch ports. The model is simple and
//! composable — with some probability a run is "contended" and picks up
//! an extra multiplicative penalty — but it reproduces the operationally
//! important effect: interference widens distributions asymmetrically and
//! inflates exactly the repetition counts CONFIRM reports.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::distributions::Dist;
use crate::hardware::Subsystem;

/// An interference model: per-subsystem contention probability and
/// penalty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Probability that any given run is contended.
    pub contention_prob: f64,
    /// Multiplicative penalty on a contended run (applied to latency
    /// directly; inverted internally for throughput subsystems so that
    /// contention always *hurts*).
    pub penalty: Dist,
    /// Which subsystems contention touches (empty = all).
    pub subsystems: Vec<Subsystem>,
}

impl InterferenceModel {
    /// A neighborly model: 15% of runs contended, 5–40% penalty, all
    /// subsystems.
    pub fn noisy_neighbor() -> Self {
        Self {
            contention_prob: 0.15,
            penalty: Dist::Uniform { lo: 1.05, hi: 1.4 },
            subsystems: Vec::new(),
        }
    }

    /// Whether this model touches `subsystem`.
    pub fn affects(&self, subsystem: Subsystem) -> bool {
        self.subsystems.is_empty() || self.subsystems.contains(&subsystem)
    }

    /// Applies interference to a measured `value` for one run.
    ///
    /// `stream_seed` must be unique per run (the cluster passes its
    /// derived per-run seed) so contention is reproducible.
    pub fn apply(&self, value: f64, subsystem: Subsystem, stream_seed: u64) -> f64 {
        if !self.affects(subsystem) || self.contention_prob <= 0.0 {
            return value;
        }
        let mut rng = StdRng::seed_from_u64(stream_seed ^ 0xD00D_F00D_5EED_BEEF);
        if rng.random::<f64>() >= self.contention_prob {
            return value;
        }
        let penalty = self.penalty.sample(&mut rng).max(1.0);
        if subsystem.higher_is_better() {
            value / penalty
        } else {
            value * penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_always_hurts() {
        let model = InterferenceModel::noisy_neighbor();
        let mut contended_lat = 0usize;
        let mut contended_bw = 0usize;
        for seed in 0..2000u64 {
            let lat = model.apply(100.0, Subsystem::NetworkLatency, seed);
            let bw = model.apply(100.0, Subsystem::MemoryBandwidth, seed);
            assert!(lat >= 100.0, "latency improved under contention: {lat}");
            assert!(bw <= 100.0, "throughput improved under contention: {bw}");
            if lat > 100.0 {
                contended_lat += 1;
            }
            if bw < 100.0 {
                contended_bw += 1;
            }
        }
        // ~15% contended.
        assert!((200..400).contains(&contended_lat), "{contended_lat}");
        assert!((200..400).contains(&contended_bw), "{contended_bw}");
    }

    #[test]
    fn deterministic_per_seed() {
        let model = InterferenceModel::noisy_neighbor();
        let a = model.apply(50.0, Subsystem::DiskSequential, 42);
        let b = model.apply(50.0, Subsystem::DiskSequential, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn subsystem_scoping() {
        let model = InterferenceModel {
            contention_prob: 1.0,
            penalty: Dist::Constant(2.0),
            subsystems: vec![Subsystem::NetworkLatency],
        };
        assert!(model.affects(Subsystem::NetworkLatency));
        assert!(!model.affects(Subsystem::DiskRandom));
        assert_eq!(model.apply(10.0, Subsystem::NetworkLatency, 1), 20.0);
        assert_eq!(model.apply(10.0, Subsystem::DiskRandom, 1), 10.0);
    }

    #[test]
    fn zero_probability_is_identity() {
        let model = InterferenceModel {
            contention_prob: 0.0,
            penalty: Dist::Constant(10.0),
            subsystems: Vec::new(),
        };
        for seed in 0..100 {
            assert_eq!(model.apply(7.0, Subsystem::MemoryLatency, seed), 7.0);
        }
    }
}
