//! Cluster provisioning and the measurement entry point.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::hardware::{MachineType, Subsystem};
use crate::interference::InterferenceModel;
use crate::machine::{Machine, MachineId};
use crate::temporal::Timeline;
use crate::variation::default_variation;

/// A provisioned fleet: machines, their types, and the campaign timeline.
///
/// # Examples
///
/// ```
/// use testbed::{catalog, Cluster, Subsystem, Timeline};
///
/// let cluster = Cluster::provision(catalog(), 0.1, Timeline::quiet(30.0), 42);
/// assert!(cluster.machines().len() > 50);
/// let m = &cluster.machines()[0];
/// let v = cluster.measure(m.id, Subsystem::MemoryBandwidth, 3.0, 0);
/// assert!(v.unwrap() > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    types: Vec<MachineType>,
    machines: Vec<Machine>,
    timeline: Timeline,
    seed: u64,
    #[serde(default)]
    interference: Option<InterferenceModel>,
}

impl Cluster {
    /// Provisions a cluster from a catalog, scaling each type's fleet
    /// count by `scale` (at least one machine per type), with a campaign
    /// `timeline` and a deterministic `seed`.
    pub fn provision(types: Vec<MachineType>, scale: f64, timeline: Timeline, seed: u64) -> Self {
        let _span = telemetry::span("testbed.provision");
        let mut machines = Vec::new();
        let mut next_id = 0u32;
        for t in &types {
            let count = ((t.count as f64 * scale).round() as usize).max(1);
            for _ in 0..count {
                machines.push(Machine::provision(t, MachineId(next_id), seed));
                next_id += 1;
            }
        }
        telemetry::metrics::counter("testbed.machines_provisioned").add(machines.len() as u64);
        Self {
            types,
            machines,
            timeline,
            seed,
            interference: None,
        }
    }

    /// Attaches a multi-tenant interference model; every subsequent
    /// measurement of an affected subsystem may be contended.
    pub fn with_interference(mut self, model: InterferenceModel) -> Self {
        self.interference = Some(model);
        self
    }

    /// The attached interference model, if any.
    pub fn interference(&self) -> Option<&InterferenceModel> {
        self.interference.as_ref()
    }

    /// Every machine in the fleet.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The machine-type catalog this cluster was provisioned from.
    pub fn types(&self) -> &[MachineType] {
        &self.types
    }

    /// The campaign timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Looks up a machine by id (O(1): provisioning assigns dense ids).
    pub fn machine(&self, id: MachineId) -> Option<&Machine> {
        self.machines
            .get(id.0 as usize)
            .filter(|m| m.id == id)
            .or_else(|| self.machines.iter().find(|m| m.id == id))
    }

    /// The machines of one type.
    pub fn machines_of_type(&self, type_name: &str) -> Vec<&Machine> {
        self.machines
            .iter()
            .filter(|m| m.type_name == type_name)
            .collect()
    }

    /// The type descriptor of a machine.
    pub fn type_of(&self, machine: &Machine) -> &MachineType {
        self.types
            .iter()
            .find(|t| t.name == machine.type_name)
            .expect("machine type always present in catalog")
    }

    /// Performs one simulated measurement of `subsystem` on machine `id`
    /// at campaign day `day`; `run_nonce` distinguishes repeated runs so
    /// every (machine, subsystem, day, run) tuple is reproducible
    /// independently.
    ///
    /// The measured value composes the paper's variability anatomy:
    /// `baseline(type) x lottery(machine) x timeline(day) x run noise`.
    ///
    /// Returns `None` for an unknown machine id.
    pub fn measure(
        &self,
        id: MachineId,
        subsystem: Subsystem,
        day: f64,
        run_nonce: u64,
    ) -> Option<f64> {
        let machine = self.machine(id)?;
        let mtype = self.type_of(machine);
        let variation = default_variation(subsystem, mtype.disk);
        // Each machine owns an independent stream derived from
        // (campaign_seed, machine_id); each measurement derives from that
        // stream via (subsystem, day, nonce). Hierarchical derivation
        // makes every draw reproducible in any order and on any thread.
        let h = crate::derive::stream_seed(
            crate::derive::machine_stream(self.seed, id),
            &[subsystem.index() as u64, day.to_bits(), run_nonce],
        );
        let mut rng = StdRng::seed_from_u64(h);
        let baseline = mtype.baseline(subsystem);
        let lottery = machine.unit_factor(subsystem);
        let environment = self.timeline.factor(subsystem, day);
        let run = variation.run_factor(day, &mut rng);
        let mut value = baseline * lottery * environment * run;
        if let Some(model) = &self.interference {
            value = model.apply(value, subsystem, h);
        }
        Some(value)
    }

    /// Collects `n` repeated measurements (nonces `0..n`) of a subsystem
    /// on one machine at a fixed day.
    pub fn measure_n(
        &self,
        id: MachineId,
        subsystem: Subsystem,
        day: f64,
        n: usize,
    ) -> Option<Vec<f64>> {
        (0..n as u64)
            .map(|nonce| self.measure(id, subsystem, day, nonce))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::catalog;

    fn small_cluster() -> Cluster {
        Cluster::provision(catalog(), 0.05, Timeline::quiet(300.0), 1)
    }

    #[test]
    fn provisioning_scales_counts() {
        let full = Cluster::provision(catalog(), 1.0, Timeline::quiet(1.0), 1);
        let tenth = Cluster::provision(catalog(), 0.1, Timeline::quiet(1.0), 1);
        assert!(full.machines().len() > 800);
        let ratio = full.machines().len() as f64 / tenth.machines().len() as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
        // At least one machine per type even at tiny scale.
        let tiny = Cluster::provision(catalog(), 0.0001, Timeline::quiet(1.0), 1);
        assert_eq!(tiny.machines().len(), tiny.types().len());
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let c = small_cluster();
        let mut ids: Vec<u32> = c.machines().iter().map(|m| m.id.0).collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, i as u32);
        }
    }

    #[test]
    fn measurements_are_reproducible_and_nonce_sensitive() {
        let c = small_cluster();
        let id = c.machines()[0].id;
        let a = c.measure(id, Subsystem::DiskSequential, 5.0, 0).unwrap();
        let b = c.measure(id, Subsystem::DiskSequential, 5.0, 0).unwrap();
        let d = c.measure(id, Subsystem::DiskSequential, 5.0, 1).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn unknown_machine_returns_none() {
        let c = small_cluster();
        assert!(c
            .measure(MachineId(9999), Subsystem::DiskRandom, 0.0, 0)
            .is_none());
        assert!(c.machine(MachineId(9999)).is_none());
    }

    #[test]
    fn measured_values_near_type_baseline() {
        let c = small_cluster();
        for m in c.machines().iter().take(20) {
            let t = c.type_of(m);
            let v = c.measure(m.id, Subsystem::MemoryBandwidth, 0.0, 0).unwrap();
            let rel = v / t.mem_bw_mbps;
            assert!((0.8..1.2).contains(&rel), "rel {rel}");
        }
    }

    #[test]
    fn machines_of_type_partition_fleet() {
        let c = small_cluster();
        let total: usize = c
            .types()
            .iter()
            .map(|t| c.machines_of_type(&t.name).len())
            .sum();
        assert_eq!(total, c.machines().len());
        assert!(!c.machines_of_type("c220g1").is_empty());
        assert!(c.machines_of_type("nope").is_empty());
    }

    #[test]
    fn timeline_shifts_measurements() {
        let timeline = Timeline::cloudlab_default();
        let c = Cluster::provision(catalog(), 0.05, timeline, 3);
        let id = c.machines()[0].id;
        // Average many runs before/after the memory-latency event at day 95.
        let before: f64 = c
            .measure_n(id, Subsystem::MemoryLatency, 90.0, 200)
            .unwrap()
            .iter()
            .sum::<f64>()
            / 200.0;
        let after: f64 = c
            .measure_n(id, Subsystem::MemoryLatency, 100.0, 200)
            .unwrap()
            .iter()
            .sum::<f64>()
            / 200.0;
        let shift = after / before;
        assert!((1.02..1.08).contains(&shift), "shift {shift}");
    }

    #[test]
    fn interference_widens_and_hurts() {
        let quiet = small_cluster();
        let noisy = small_cluster()
            .with_interference(crate::interference::InterferenceModel::noisy_neighbor());
        let id = quiet.machines()[0].id;
        let q = quiet
            .measure_n(id, Subsystem::MemoryBandwidth, 0.0, 500)
            .unwrap();
        let n = noisy
            .measure_n(id, Subsystem::MemoryBandwidth, 0.0, 500)
            .unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&n) < mean(&q), "contention must reduce throughput");
        // Contended runs never exceed the quiet value for the same nonce.
        for (a, b) in q.iter().zip(n.iter()) {
            assert!(b <= a, "quiet {a} vs noisy {b}");
        }
        assert!(noisy.interference().is_some());
        assert!(quiet.interference().is_none());
    }

    #[test]
    fn measure_n_length_and_variety() {
        let c = small_cluster();
        let id = c.machines()[0].id;
        let xs = c.measure_n(id, Subsystem::DiskRandom, 1.0, 50).unwrap();
        assert_eq!(xs.len(), 50);
        let distinct: std::collections::HashSet<u64> = xs.iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 40);
    }
}
