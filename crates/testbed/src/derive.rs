//! Deterministic RNG stream derivation.
//!
//! Every random draw in the testbed comes from a stream seed derived by
//! folding identifying components (machine id, subsystem, day, run nonce)
//! into the master seed with [`stream_seed`]. The fold is sequential, so
//! derivation is *hierarchical*: deriving a machine's stream first
//! ([`machine_stream`]) and then folding the remaining components into it
//! yields exactly the same seed as folding everything at once. That
//! property is what makes the measurement campaign embarrassingly
//! parallel — a worker that owns a machine owns the machine's whole
//! stream, and no draw depends on which thread (or in which order)
//! another machine is measured.
//!
//! ```
//! use testbed::{machine_stream, stream_seed, MachineId};
//!
//! let master = 42;
//! let all_at_once = stream_seed(master, &[7, 3, 100]);
//! let hierarchical = stream_seed(machine_stream(master, MachineId(7)), &[3, 100]);
//! assert_eq!(all_at_once, hierarchical);
//! ```

use crate::machine::MachineId;

/// Folds `components` into `seed`, producing an independent stream seed.
///
/// The mix is a boost-style hash combine: each component is perturbed by
/// the 64-bit golden ratio and the running state before being XORed in.
/// Identical inputs always produce identical outputs; changing any single
/// component produces an unrelated stream.
pub fn stream_seed(seed: u64, components: &[u64]) -> u64 {
    let mut h = seed;
    for &k in components {
        h ^= k
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
    }
    h
}

/// The RNG stream seed owned by one machine of a campaign: every
/// measurement taken on `machine` derives from this stream, regardless of
/// which worker thread performs it.
pub fn machine_stream(campaign_seed: u64, machine: MachineId) -> u64 {
    stream_seed(campaign_seed, &[machine.0 as u64])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_is_hierarchical() {
        // stream_seed(stream_seed(s, [a]), [b, c]) == stream_seed(s, [a, b, c])
        for seed in [0u64, 1, 42, u64::MAX] {
            for parts in [[1u64, 2, 3], [0, 0, 0], [u64::MAX, 7, 1 << 60]] {
                let whole = stream_seed(seed, &parts);
                let staged = stream_seed(stream_seed(seed, &parts[..1]), &parts[1..]);
                assert_eq!(whole, staged);
            }
        }
    }

    #[test]
    fn machine_streams_are_distinct_and_reproducible() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..1000u32 {
            let s = machine_stream(42, MachineId(id));
            assert_eq!(s, machine_stream(42, MachineId(id)));
            assert!(seen.insert(s), "machine {id} collides");
        }
    }

    #[test]
    fn any_component_changes_the_stream() {
        let base = stream_seed(7, &[1, 2, 3]);
        assert_ne!(base, stream_seed(8, &[1, 2, 3]));
        assert_ne!(base, stream_seed(7, &[9, 2, 3]));
        assert_ne!(base, stream_seed(7, &[1, 9, 3]));
        assert_ne!(base, stream_seed(7, &[1, 2, 9]));
        assert_ne!(base, stream_seed(7, &[1, 2]));
    }
}
