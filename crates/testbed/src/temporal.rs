//! The campaign timeline: drift and maintenance changepoints.
//!
//! The paper's data collection ran for roughly ten months, across which
//! the testbed's software environment changed (kernel upgrades, firmware
//! rollouts). Those events shift performance levels and are exactly what
//! changepoint detection (experiment F11) must find. The timeline applies
//! a multiplicative factor per subsystem as a function of the simulated
//! day.

use serde::{Deserialize, Serialize};

use crate::hardware::Subsystem;

/// A fleet-wide environment change at a point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceEvent {
    /// Day (from campaign start) the change lands.
    pub day: f64,
    /// Affected subsystem; `None` means every subsystem.
    pub subsystem: Option<Subsystem>,
    /// Multiplicative factor applied from `day` onward.
    pub factor: f64,
    /// Human-readable description (appears in experiment artifacts).
    pub description: String,
}

/// The campaign timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Campaign length in days.
    pub duration_days: f64,
    /// Ordered list of environment changes.
    pub events: Vec<MaintenanceEvent>,
}

impl Timeline {
    /// A timeline with no events (for controlled experiments).
    pub fn quiet(duration_days: f64) -> Self {
        Self {
            duration_days,
            events: Vec::new(),
        }
    }

    /// The default ten-month campaign with three realistic maintenance
    /// events.
    pub fn cloudlab_default() -> Self {
        Self {
            duration_days: 300.0,
            events: vec![
                MaintenanceEvent {
                    day: 95.0,
                    subsystem: Some(Subsystem::MemoryLatency),
                    factor: 1.05,
                    description: "kernel upgrade (page-table isolation)".to_string(),
                },
                MaintenanceEvent {
                    day: 170.0,
                    subsystem: Some(Subsystem::DiskSequential),
                    factor: 0.96,
                    description: "I/O scheduler change".to_string(),
                },
                MaintenanceEvent {
                    day: 230.0,
                    subsystem: Some(Subsystem::NetworkLatency),
                    factor: 0.93,
                    description: "switch firmware rollout".to_string(),
                },
            ],
        }
    }

    /// Adds an event (keeps the list ordered by day).
    pub fn with_event(mut self, event: MaintenanceEvent) -> Self {
        self.events.push(event);
        self.events
            .sort_by(|a, b| a.day.partial_cmp(&b.day).expect("finite days"));
        self
    }

    /// The cumulative multiplicative factor for `subsystem` at `day`.
    pub fn factor(&self, subsystem: Subsystem, day: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.day <= day && e.subsystem.map(|s| s == subsystem).unwrap_or(true))
            .map(|e| e.factor)
            .product()
    }

    /// Days on which any event affecting `subsystem` lands (the ground
    /// truth for changepoint experiments).
    pub fn change_days(&self, subsystem: Subsystem) -> Vec<f64> {
        self.events
            .iter()
            .filter(|e| e.subsystem.map(|s| s == subsystem).unwrap_or(true))
            .map(|e| e.day)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_timeline_is_identity() {
        let t = Timeline::quiet(100.0);
        for s in Subsystem::ALL {
            assert_eq!(t.factor(s, 0.0), 1.0);
            assert_eq!(t.factor(s, 99.0), 1.0);
        }
        assert!(t.change_days(Subsystem::DiskSequential).is_empty());
    }

    #[test]
    fn default_timeline_shifts_after_events() {
        let t = Timeline::cloudlab_default();
        assert_eq!(t.factor(Subsystem::MemoryLatency, 94.0), 1.0);
        assert!((t.factor(Subsystem::MemoryLatency, 95.0) - 1.05).abs() < 1e-12);
        assert!((t.factor(Subsystem::DiskSequential, 200.0) - 0.96).abs() < 1e-12);
        // Unaffected subsystem is untouched.
        assert_eq!(t.factor(Subsystem::NetworkBandwidth, 299.0), 1.0);
    }

    #[test]
    fn factors_compose_multiplicatively() {
        let t = Timeline::quiet(50.0)
            .with_event(MaintenanceEvent {
                day: 10.0,
                subsystem: Some(Subsystem::DiskRandom),
                factor: 0.9,
                description: "a".to_string(),
            })
            .with_event(MaintenanceEvent {
                day: 20.0,
                subsystem: Some(Subsystem::DiskRandom),
                factor: 1.1,
                description: "b".to_string(),
            });
        assert!((t.factor(Subsystem::DiskRandom, 25.0) - 0.99).abs() < 1e-12);
        assert_eq!(t.change_days(Subsystem::DiskRandom), vec![10.0, 20.0]);
    }

    #[test]
    fn global_events_hit_every_subsystem() {
        let t = Timeline::quiet(50.0).with_event(MaintenanceEvent {
            day: 5.0,
            subsystem: None,
            factor: 0.95,
            description: "power cap".to_string(),
        });
        for s in Subsystem::ALL {
            assert!((t.factor(s, 6.0) - 0.95).abs() < 1e-12);
        }
    }

    #[test]
    fn with_event_keeps_order() {
        let t = Timeline::quiet(50.0)
            .with_event(MaintenanceEvent {
                day: 30.0,
                subsystem: None,
                factor: 1.0,
                description: "late".to_string(),
            })
            .with_event(MaintenanceEvent {
                day: 10.0,
                subsystem: None,
                factor: 1.0,
                description: "early".to_string(),
            });
        assert!(t.events[0].day < t.events[1].day);
    }
}
