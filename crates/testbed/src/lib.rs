//! # testbed — a simulated multi-machine measurement testbed
//!
//! The *Taming Performance Variability* campaign ran on ~900 physical
//! CloudLab servers for ten months. This crate is the substitute substrate
//! (documented in DESIGN.md §3): a deterministic simulator whose fleet,
//! per-unit hardware lottery, per-subsystem noise models, and maintenance
//! timeline reproduce the statistical structure the paper reports —
//! skewed/lognormal disk behaviour, multimodal memory lotteries,
//! heavy-tailed network latency, near-constant network throughput, and
//! level shifts at environment upgrades.
//!
//! Everything is seeded: the same seed reproduces the same fleet and the
//! same measurement for any `(machine, subsystem, day, run)` tuple,
//! independent of evaluation order.
//!
//! ```
//! use testbed::{catalog, Cluster, Subsystem, Timeline};
//!
//! let cluster = Cluster::provision(catalog(), 0.05, Timeline::cloudlab_default(), 7);
//! let node = cluster.machines()[0].id;
//! let runs = cluster.measure_n(node, Subsystem::DiskSequential, 12.0, 30).unwrap();
//! assert_eq!(runs.len(), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod cluster;
mod derive;
mod distributions;
pub mod faults;
mod hardware;
mod interference;
mod machine;
mod temporal;
mod variation;

pub use allocation::{allocate, AllocationPolicy};
pub use cluster::Cluster;
pub use derive::{machine_stream, stream_seed};
pub use distributions::Dist;
pub use faults::{FaultPlan, FaultPolicy, MAX_FAULTS_PER_SITE};
pub use hardware::{catalog, find_type, DiskKind, MachineType, Subsystem};
pub use interference::InterferenceModel;
pub use machine::{Machine, MachineId};
pub use temporal::{MaintenanceEvent, Timeline};
pub use variation::{default_variation, SubsystemVariation};
