//! Property-based tests for the testbed simulator.

use proptest::prelude::*;
use testbed::{allocate, catalog, AllocationPolicy, Cluster, Subsystem, Timeline};

fn any_subsystem() -> impl Strategy<Value = Subsystem> {
    prop::sample::select(Subsystem::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn measurements_are_positive_and_reproducible(
        seed in 0u64..1000,
        subsystem in any_subsystem(),
        day in 0.0..300.0f64,
        nonce in 0u64..10_000,
    ) {
        let cluster = Cluster::provision(catalog(), 0.02, Timeline::cloudlab_default(), seed);
        let id = cluster.machines()[(seed % cluster.machines().len() as u64) as usize].id;
        let a = cluster.measure(id, subsystem, day, nonce).unwrap();
        let b = cluster.measure(id, subsystem, day, nonce).unwrap();
        prop_assert!(a > 0.0);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn measurements_stay_near_baseline(
        seed in 0u64..200,
        subsystem in any_subsystem(),
    ) {
        let cluster = Cluster::provision(catalog(), 0.02, Timeline::quiet(10.0), seed);
        let machine = &cluster.machines()[0];
        let mtype = cluster.type_of(machine);
        let baseline = mtype.baseline(subsystem);
        // Average over runs: multiplicative factors center near 1.
        let xs = cluster.measure_n(machine.id, subsystem, 0.0, 100).unwrap();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let rel = mean / baseline;
        prop_assert!((0.5..2.5).contains(&rel), "rel {rel} for {subsystem:?}");
    }

    #[test]
    fn provisioning_scale_is_monotone(sa in 0.01..0.5f64, sb in 0.01..0.5f64) {
        let (small, large) = if sa <= sb { (sa, sb) } else { (sb, sa) };
        let cs = Cluster::provision(catalog(), small, Timeline::quiet(1.0), 1);
        let cl = Cluster::provision(catalog(), large, Timeline::quiet(1.0), 1);
        prop_assert!(cs.machines().len() <= cl.machines().len());
    }

    #[test]
    fn allocation_never_duplicates_or_overflows(
        seed in 0u64..500,
        k in 1usize..30,
    ) {
        let cluster = Cluster::provision(catalog(), 0.1, Timeline::quiet(1.0), 3);
        for policy in [
            AllocationPolicy::Sequential,
            AllocationPolicy::Random { seed },
            AllocationPolicy::Strided,
        ] {
            let picked = allocate(&cluster, "m400", k, policy);
            let fleet = cluster.machines_of_type("m400").len();
            prop_assert!(picked.len() == k.min(fleet));
            let mut ids: Vec<u32> = picked.iter().map(|m| m.id.0).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "{:?} duplicated machines", policy);
        }
    }

    #[test]
    fn timeline_factor_is_piecewise_constant_and_composes(
        day in 0.0..300.0f64,
        subsystem in any_subsystem(),
    ) {
        let t = Timeline::cloudlab_default();
        let f = t.factor(subsystem, day);
        prop_assert!(f > 0.0);
        // Just after the same day the factor is identical (events land on
        // whole days in the default timeline).
        let g = t.factor(subsystem, day + 1e-9);
        prop_assert_eq!(f, g);
        // At the campaign end the factor equals the product of all
        // matching events.
        let expected: f64 = t
            .events
            .iter()
            .filter(|e| e.subsystem.map(|s| s == subsystem).unwrap_or(true))
            .map(|e| e.factor)
            .product();
        prop_assert!((t.factor(subsystem, 1e9) - expected).abs() < 1e-12);
    }
}
