//! # varstats — benchmarking statistics for performance-variability analysis
//!
//! This crate is the statistical substrate of the *Taming Performance
//! Variability* (OSDI 2018) reproduction. The paper's methodology rests on
//! a handful of tools that mainstream Rust lacks a canonical library for,
//! so everything here is implemented from first principles:
//!
//! * **Descriptive statistics** — one-pass Welford moments
//!   ([`descriptive::Moments`]), robust summaries ([`descriptive::Summary`]),
//!   MAD, CoV.
//! * **Quantiles** — Hyndman–Fan estimators ([`quantile`]), ECDFs, and the
//!   two-sample Kolmogorov–Smirnov test.
//! * **Confidence intervals** — parametric t/z intervals
//!   ([`ci::parametric`]), **non-parametric order-statistic intervals** for
//!   the median and arbitrary quantiles ([`ci::nonparametric`], including
//!   the paper's `floor((n - z sqrt(n))/2)` median formula), and a
//!   hand-rolled **bootstrap** (percentile / basic / BCa,
//!   [`ci::bootstrap`]).
//! * **Normality tests** — Shapiro–Wilk (Royston AS R94), Anderson–Darling,
//!   Jarque–Bera ([`normality`]).
//! * **Independence diagnostics** — ACF, turning-point, runs, Spearman
//!   trend ([`independence`]).
//! * **Sample-size estimation** — Jain's parametric formula
//!   ([`samplesize`]); the non-parametric CONFIRM procedure lives in the
//!   companion `confirm` crate.
//! * **Changepoint detection** — CUSUM and PELT ([`changepoint`]) for
//!   batch series, plus an incremental robust CUSUM ([`online`]) that
//!   reports regime shifts as points arrive.
//! * **Two-sample comparison** — CI-overlap verdicts, Mann–Whitney U,
//!   Cliff's delta ([`comparison`]).
//!
//! ## Quick example
//!
//! ```
//! use varstats::{Samples, ci::nonparametric::median_ci_exact, normality::shapiro_wilk};
//!
//! // 50 repetitions of a benchmark.
//! let runs: Vec<f64> = (0..50).map(|i| 100.0 + ((i * 17) % 13) as f64).collect();
//! let samples = Samples::new(runs).unwrap();
//!
//! // Is it normal? (Usually not, for real benchmark data.)
//! let sw = shapiro_wilk(samples.data()).unwrap();
//!
//! // Either way, the non-parametric median CI is safe to report.
//! let ci = median_ci_exact(samples.data(), 0.95).unwrap();
//! assert!(ci.ci.contains(samples.median().unwrap()));
//! # let _ = sw;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anova;
pub mod changepoint;
pub mod ci;
pub mod comparison;
pub mod density;
pub mod descriptive;
pub mod error;
pub mod histogram;
pub mod independence;
pub mod normality;
pub mod online;
pub mod qq;
pub mod quantile;
pub mod ranktests;
pub mod robust;
pub mod samples;
pub mod samplesize;
pub mod special;
pub mod stationarity;

pub use ci::ConfidenceInterval;
pub use descriptive::{Moments, Summary};
pub use error::{Result, StatsError};
pub use normality::TestResult;
pub use samples::Samples;
