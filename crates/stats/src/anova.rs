//! Group-comparison tests on means and variances.
//!
//! The cross-machine analyses need more than pairwise tools: one-way
//! ANOVA (do `k` groups share a mean?), Welch's t (two groups, unequal
//! variances — the honest parametric two-sample test), and
//! **Brown–Forsythe** (do `k` groups share a *variance*? — the
//! median-centered Levene test, robust to the non-normality this field
//! guarantees). Brown–Forsythe is what turns "machine variability
//! differs" from an impression into a test.

use crate::descriptive::Moments;
use crate::error::{check_finite, invalid, Result, StatsError};
use crate::normality::TestResult;
use crate::quantile::median;
use crate::special::{f_cdf, student_t_cdf};

fn validate_groups(groups: &[&[f64]], min_per_group: usize) -> Result<()> {
    if groups.len() < 2 {
        return Err(invalid("groups", "need at least 2 groups"));
    }
    for g in groups {
        check_finite(g)?;
        if g.len() < min_per_group {
            return Err(StatsError::TooFewSamples {
                needed: min_per_group,
                got: g.len(),
            });
        }
    }
    Ok(())
}

/// One-way ANOVA F test on the raw values of `k` groups.
///
/// # Errors
///
/// Returns an error with fewer than 2 groups, any group smaller than 3,
/// invalid values, or zero within-group variance.
pub fn one_way_anova(groups: &[&[f64]]) -> Result<TestResult> {
    validate_groups(groups, 3)?;
    anova_f(groups)
}

/// The core F computation shared by ANOVA and Brown–Forsythe.
fn anova_f(groups: &[&[f64]]) -> Result<TestResult> {
    let k = groups.len() as f64;
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let n = n_total as f64;
    let grand_mean = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n;
    let mut between = 0.0;
    let mut within = 0.0;
    for g in groups {
        let m: Moments = g.iter().copied().collect();
        let d = m.mean() - grand_mean;
        between += g.len() as f64 * d * d;
        within += g
            .iter()
            .map(|x| (x - m.mean()) * (x - m.mean()))
            .sum::<f64>();
    }
    let df1 = k - 1.0;
    let df2 = n - k;
    if within <= 0.0 || df2 <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let f = (between / df1) / (within / df2);
    let p = 1.0 - f_cdf(f, df1, df2)?;
    Ok(TestResult {
        statistic: f,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Brown–Forsythe test of variance homogeneity: one-way ANOVA on the
/// absolute deviations from each group's **median**.
///
/// Small p-values mean the groups' spreads genuinely differ — e.g.
/// nominally identical machines with different run-to-run noise.
///
/// # Errors
///
/// Same as [`one_way_anova`], plus zero variance of the deviations.
///
/// # Examples
///
/// ```
/// use varstats::anova::brown_forsythe;
///
/// let tight: Vec<f64> = (0..40).map(|i| 100.0 + (i % 5) as f64 * 0.1).collect();
/// let wide: Vec<f64> = (0..40).map(|i| 100.0 + (i % 5) as f64 * 5.0).collect();
/// let r = brown_forsythe(&[&tight, &wide]).unwrap();
/// assert!(r.p_value < 0.001);
/// ```
pub fn brown_forsythe(groups: &[&[f64]]) -> Result<TestResult> {
    validate_groups(groups, 3)?;
    let deviations: Vec<Vec<f64>> = groups
        .iter()
        .map(|g| {
            let med = median(g)?;
            Ok(g.iter().map(|x| (x - med).abs()).collect())
        })
        .collect::<Result<_>>()?;
    let refs: Vec<&[f64]> = deviations.iter().map(|d| d.as_slice()).collect();
    anova_f(&refs)
}

/// Welch's two-sample t test (unequal variances, two-sided) on the means.
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 5 samples per side, or
/// zero variance in both groups.
///
/// # Examples
///
/// ```
/// use varstats::anova::welch_t;
///
/// let a: Vec<f64> = (0..20).map(|i| 10.0 + (i % 4) as f64).collect();
/// let b: Vec<f64> = (0..20).map(|i| 20.0 + (i % 4) as f64).collect();
/// let r = welch_t(&a, &b).unwrap();
/// assert!(r.p_value < 1e-6);
/// ```
pub fn welch_t(a: &[f64], b: &[f64]) -> Result<TestResult> {
    check_finite(a)?;
    check_finite(b)?;
    if a.len() < 5 || b.len() < 5 {
        return Err(StatsError::TooFewSamples {
            needed: 5,
            got: a.len().min(b.len()),
        });
    }
    let ma: Moments = a.iter().copied().collect();
    let mb: Moments = b.iter().copied().collect();
    let va = ma.sample_variance() / a.len() as f64;
    let vb = mb.sample_variance() / b.len() as f64;
    let se2 = va + vb;
    if se2 <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let t = (ma.mean() - mb.mean()) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / (va * va / (a.len() as f64 - 1.0) + vb * vb / (b.len() as f64 - 1.0));
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df)?);
    Ok(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn anova_accepts_identical_groups() {
        let mut u = splitmix(1);
        let groups: Vec<Vec<f64>> = (0..3).map(|_| (0..40).map(|_| u()).collect()).collect();
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        let r = one_way_anova(&refs).unwrap();
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn anova_rejects_shifted_group() {
        let mut u = splitmix(2);
        let g1: Vec<f64> = (0..40).map(|_| u()).collect();
        let g2: Vec<f64> = (0..40).map(|_| u()).collect();
        let g3: Vec<f64> = (0..40).map(|_| u() + 1.0).collect();
        let r = one_way_anova(&[&g1, &g2, &g3]).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
        assert!(r.statistic > 10.0);
    }

    #[test]
    fn brown_forsythe_accepts_equal_spreads() {
        let mut u = splitmix(3);
        let g1: Vec<f64> = (0..50).map(|_| u()).collect();
        let g2: Vec<f64> = (0..50).map(|_| 100.0 + u()).collect(); // shifted, same spread
        let r = brown_forsythe(&[&g1, &g2]).unwrap();
        assert!(r.p_value > 0.05, "p={}", r.p_value);
    }

    #[test]
    fn brown_forsythe_rejects_unequal_spreads() {
        let mut u = splitmix(4);
        let tight: Vec<f64> = (0..50).map(|_| u() * 0.1).collect();
        let wide: Vec<f64> = (0..50).map(|_| u() * 10.0).collect();
        let r = brown_forsythe(&[&tight, &wide]).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn brown_forsythe_is_location_insensitive() {
        // The whole point of median centering: a shifted copy does not
        // trigger the variance test.
        let mut u = splitmix(5);
        let base: Vec<f64> = (0..60).map(|_| u()).collect();
        let shifted: Vec<f64> = base.iter().map(|x| x + 1000.0).collect();
        let r = brown_forsythe(&[&base, &shifted]).unwrap();
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn welch_t_behaviour() {
        let mut u = splitmix(6);
        let a: Vec<f64> = (0..30).map(|_| 10.0 + u()).collect();
        let same: Vec<f64> = (0..30).map(|_| 10.0 + u()).collect();
        let shifted: Vec<f64> = (0..30).map(|_| 11.0 + u() * 3.0).collect();
        assert!(welch_t(&a, &same).unwrap().p_value > 0.01);
        assert!(welch_t(&a, &shifted).unwrap().p_value < 0.001);
        // Symmetry of the two-sided p.
        let p1 = welch_t(&a, &shifted).unwrap().p_value;
        let p2 = welch_t(&shifted, &a).unwrap().p_value;
        assert!((p1 - p2).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let g: Vec<f64> = (0..10).map(f64::from).collect();
        assert!(one_way_anova(&[&g]).is_err());
        assert!(one_way_anova(&[&g, &[1.0, 2.0]]).is_err());
        let same = [5.0; 10];
        assert!(one_way_anova(&[&same, &same]).is_err());
        assert!(welch_t(&g, &[1.0]).is_err());
        assert!(welch_t(&same, &same).is_err());
    }
}
