//! Sample quantiles and empirical CDFs.
//!
//! Quantile estimation follows the Hyndman–Fan taxonomy. The paper's
//! analyses are built on medians and tail quantiles (p95/p99), so getting
//! the interpolation conventions right — and stating which one is used —
//! matters for reproducibility.

use crate::error::{check_finite, invalid, Result};

/// Quantile estimation method (Hyndman–Fan taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantileMethod {
    /// Type 1: inverse of the empirical CDF (no interpolation).
    InverseCdf,
    /// Type 2: inverse ECDF with averaging at discontinuities.
    InverseCdfAveraged,
    /// Type 4: linear interpolation of the ECDF, `h = n q`.
    EcdfLinear,
    /// Type 6: `h = (n + 1) q` — the convention used by many benchmarking
    /// tools for tail percentiles.
    Weibull,
    /// Type 7 (default, matches R/NumPy defaults): `h = (n - 1) q + 1`.
    #[default]
    Linear,
    /// Type 8: `h = (n + 1/3) q + 1/3` — approximately median-unbiased,
    /// recommended by Hyndman & Fan.
    MedianUnbiased,
}

/// Computes the `q`-quantile of already-sorted data.
///
/// # Errors
///
/// Returns an error if `sorted` is empty or non-finite, or if `q` is outside
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use varstats::quantile::{quantile_sorted, QuantileMethod};
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// let med = quantile_sorted(&data, 0.5, QuantileMethod::Linear).unwrap();
/// assert_eq!(med, 2.5);
/// ```
pub fn quantile_sorted(sorted: &[f64], q: f64, method: QuantileMethod) -> Result<f64> {
    check_finite(sorted)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(invalid("q", format!("must be in [0, 1], got {q}")));
    }
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let nf = n as f64;
    match method {
        QuantileMethod::InverseCdf => {
            // Smallest x with ECDF(x) >= q.
            let h = (nf * q).ceil() as usize;
            Ok(sorted[h.clamp(1, n) - 1])
        }
        QuantileMethod::InverseCdfAveraged => {
            let pos = nf * q;
            let k = pos.ceil() as usize;
            if (pos - pos.round()).abs() < 1e-12 && pos.round() as usize >= 1 {
                let k = pos.round() as usize;
                if k < n {
                    return Ok((sorted[k - 1] + sorted[k]) / 2.0);
                }
                return Ok(sorted[n - 1]);
            }
            Ok(sorted[k.clamp(1, n) - 1])
        }
        QuantileMethod::EcdfLinear => interpolate(sorted, nf * q),
        QuantileMethod::Weibull => interpolate(sorted, (nf + 1.0) * q),
        QuantileMethod::Linear => interpolate(sorted, (nf - 1.0) * q + 1.0),
        QuantileMethod::MedianUnbiased => interpolate(sorted, (nf + 1.0 / 3.0) * q + 1.0 / 3.0),
    }
}

/// Computes the `q`-quantile of unsorted data (copies and sorts internally).
///
/// # Errors
///
/// Same as [`quantile_sorted`].
pub fn quantile(data: &[f64], q: f64, method: QuantileMethod) -> Result<f64> {
    check_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    quantile_sorted(&sorted, q, method)
}

/// Median of unsorted data (type-7 interpolation).
///
/// # Errors
///
/// Returns an error on empty or non-finite input.
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5, QuantileMethod::Linear)
}

/// Linear interpolation at 1-based fractional order-statistic index `h`.
fn interpolate(sorted: &[f64], h: f64) -> Result<f64> {
    let n = sorted.len();
    let h = h.clamp(1.0, n as f64);
    let lo = h.floor() as usize;
    let frac = h - h.floor();
    if lo >= n {
        return Ok(sorted[n - 1]);
    }
    let low_val = sorted[lo - 1];
    if frac == 0.0 || lo == n {
        Ok(low_val)
    } else {
        Ok(low_val + frac * (sorted[lo] - low_val))
    }
}

/// Empirical cumulative distribution function of a sample set.
///
/// # Examples
///
/// ```
/// use varstats::quantile::Ecdf;
///
/// let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(e.eval(2.5), 0.5);
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(4.0), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from (unsorted) data.
    ///
    /// # Errors
    ///
    /// Returns an error on empty or non-finite input.
    pub fn new(data: &[f64]) -> Result<Self> {
        check_finite(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        Ok(Self { sorted })
    }

    /// Builds the ECDF from already-sorted data without re-sorting.
    ///
    /// # Errors
    ///
    /// Returns an error on empty or non-finite input.
    pub fn from_sorted(sorted: Vec<f64>) -> Result<Self> {
        check_finite(&sorted)?;
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        Ok(Self { sorted })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The sorted support points of the ECDF.
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the ECDF at each of its own support points, producing the
    /// step-function vertices `(x_i, i/n)` — the series a CDF plot needs.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

/// Two-sample Kolmogorov–Smirnov statistic `D = sup |F1 - F2|`.
///
/// # Errors
///
/// Returns an error if either sample is empty or non-finite.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> Result<f64> {
    let ea = Ecdf::new(a)?;
    let eb = Ecdf::new(b)?;
    let mut d: f64 = 0.0;
    for &x in ea.support().iter().chain(eb.support().iter()) {
        d = d.max((ea.eval(x) - eb.eval(x)).abs());
    }
    Ok(d)
}

/// Two-sample Kolmogorov–Smirnov test with the asymptotic p-value.
///
/// Returns `(statistic, p_value)`.
///
/// # Errors
///
/// Returns an error if either sample is empty or non-finite.
pub fn ks_test(a: &[f64], b: &[f64]) -> Result<(f64, f64)> {
    let d = ks_statistic(a, b)?;
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let ne = (na * nb / (na + nb)).sqrt();
    let lambda = (ne + 0.12 + 0.11 / ne) * d;
    Ok((d, crate::special::kolmogorov_survival(lambda)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type7_matches_r_defaults() {
        // R: quantile(c(1,2,3,4), 0.5) = 2.5; quantile(1:5, 0.25) = 2.
        let even = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&even, 0.5, QuantileMethod::Linear).unwrap(), 2.5);
        let five = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&five, 0.25, QuantileMethod::Linear).unwrap(), 2.0);
        assert_eq!(quantile(&five, 0.0, QuantileMethod::Linear).unwrap(), 1.0);
        assert_eq!(quantile(&five, 1.0, QuantileMethod::Linear).unwrap(), 5.0);
    }

    #[test]
    fn type6_matches_r_type6() {
        // R: quantile(1:4, 0.25, type = 6) = 1.25.
        let data = [1.0, 2.0, 3.0, 4.0];
        let v = quantile(&data, 0.25, QuantileMethod::Weibull).unwrap();
        assert!((v - 1.25).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn type1_is_a_data_point() {
        let data = [10.0, 20.0, 30.0];
        for &q in &[0.01, 0.2, 0.5, 0.77, 0.999] {
            let v = quantile(&data, q, QuantileMethod::InverseCdf).unwrap();
            assert!(data.contains(&v));
        }
        assert_eq!(
            quantile(&data, 0.5, QuantileMethod::InverseCdf).unwrap(),
            20.0
        );
    }

    #[test]
    fn type2_averages_at_jumps() {
        // n*q integral: Binomial median convention.
        let data = [1.0, 2.0, 3.0, 4.0];
        let v = quantile(&data, 0.5, QuantileMethod::InverseCdfAveraged).unwrap();
        assert_eq!(v, 2.5);
        let v = quantile(&data, 0.25, QuantileMethod::InverseCdfAveraged).unwrap();
        assert_eq!(v, 1.5);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for method in [
            QuantileMethod::InverseCdf,
            QuantileMethod::Weibull,
            QuantileMethod::Linear,
            QuantileMethod::MedianUnbiased,
            QuantileMethod::EcdfLinear,
        ] {
            let mut last = f64::NEG_INFINITY;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let v = quantile(&data, q, method).unwrap();
                assert!(v >= last - 1e-12, "method {method:?} q {q}");
                last = v;
            }
        }
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile(&[1.0], 1.5, QuantileMethod::Linear).is_err());
        assert!(quantile(&[1.0], -0.1, QuantileMethod::Linear).is_err());
        assert!(quantile(&[1.0], f64::NAN, QuantileMethod::Linear).is_err());
    }

    #[test]
    fn single_element_is_every_quantile() {
        for &q in &[0.0, 0.3, 1.0] {
            assert_eq!(quantile(&[7.0], q, QuantileMethod::Linear).unwrap(), 7.0);
        }
    }

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
        assert_eq!(e.len(), 4);
        let steps = e.steps();
        assert_eq!(steps.first().unwrap().0, 1.0);
        assert_eq!(steps.last().unwrap().1, 1.0);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(ks_statistic(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_statistic(&a, &b).unwrap(), 1.0);
        let (_, p) = ks_test(&a, &b).unwrap();
        assert!(
            p < 0.2,
            "disjoint tiny samples should look different, p={p}"
        );
    }

    #[test]
    fn ks_similar_samples_high_p() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 0.01).collect();
        let (d, p) = ks_test(&a, &b).unwrap();
        assert!(d <= 0.02, "d={d}");
        assert!(p > 0.9, "p={p}");
    }
}
