//! Error types for the statistics library.

use std::fmt;

/// Errors produced by statistical routines.
///
/// All fallible entry points in this crate return [`StatsError`] instead of
/// panicking, so callers can distinguish "not enough data" from "bad data"
/// and react accordingly (e.g. collect more repetitions).
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input slice was empty.
    EmptyInput,
    /// The routine needs at least `needed` samples but only `got` were given.
    TooFewSamples {
        /// Minimum number of samples the routine requires.
        needed: usize,
        /// Number of samples actually provided.
        got: usize,
    },
    /// An input value was NaN or infinite.
    NonFiniteValue {
        /// Index of the offending value in the input.
        index: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// All samples are identical, so a scale-dependent statistic is undefined.
    ZeroVariance,
    /// A numerical routine failed to converge.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input is empty"),
            StatsError::TooFewSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            StatsError::NonFiniteValue { index } => {
                write!(f, "non-finite value at index {index}")
            }
            StatsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            StatsError::ZeroVariance => {
                write!(f, "all samples are identical (zero variance)")
            }
            StatsError::NoConvergence { routine } => {
                write!(f, "numerical routine `{routine}` failed to converge")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, StatsError>;

/// Builds an [`StatsError::InvalidParameter`] with a formatted message.
pub fn invalid(name: &'static str, message: impl Into<String>) -> StatsError {
    StatsError::InvalidParameter {
        name,
        message: message.into(),
    }
}

/// Validates that every value in `data` is finite.
///
/// # Errors
///
/// Returns [`StatsError::NonFiniteValue`] for the first NaN or infinity, and
/// [`StatsError::EmptyInput`] if `data` is empty.
pub fn check_finite(data: &[f64]) -> Result<()> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    for (index, value) in data.iter().enumerate() {
        if !value.is_finite() {
            return Err(StatsError::NonFiniteValue { index });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::TooFewSamples { needed: 10, got: 3 };
        assert_eq!(e.to_string(), "need at least 10 samples, got 3");
        let e = StatsError::EmptyInput;
        assert!(e.to_string().contains("empty"));
        let e = invalid("q", "must be in (0, 1)");
        assert!(e.to_string().contains('q'));
        assert!(e.to_string().contains("(0, 1)"));
    }

    #[test]
    fn check_finite_accepts_normal_data() {
        assert!(check_finite(&[1.0, 2.0, -3.5]).is_ok());
    }

    #[test]
    fn check_finite_rejects_empty() {
        assert_eq!(check_finite(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn check_finite_reports_first_bad_index() {
        let data = [1.0, f64::NAN, f64::INFINITY];
        assert_eq!(
            check_finite(&data),
            Err(StatsError::NonFiniteValue { index: 1 })
        );
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_error(_e: &dyn std::error::Error) {}
        takes_error(&StatsError::ZeroVariance);
    }
}
