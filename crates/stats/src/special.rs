//! Special functions used throughout the library.
//!
//! Everything here is implemented from first principles (Lanczos ln-gamma,
//! rational erfc, Lentz continued fractions for the incomplete beta/gamma
//! functions, Acklam's inverse normal with a Halley refinement step). There
//! is no canonical statistics crate to lean on, and the accuracy of every
//! p-value in this library bottoms out in these routines, so each one is
//! validated against published reference values in the tests below.

use crate::error::{invalid, Result, StatsError};

/// Natural logarithm of `sqrt(2 * pi)`.
pub const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_8;

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Returns `ln(Gamma(x))` for `x > 0` (and via reflection for `x < 0`,
/// excluding the poles at non-positive integers).
///
/// Accuracy is about 15 significant digits over the tested range.
///
/// # Examples
///
/// ```
/// let lg = varstats::special::ln_gamma(5.0);
/// assert!((lg - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Gamma(x) Gamma(1-x) = pi / sin(pi x).
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS[0];
        for (i, c) in LANCZOS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        LN_SQRT_2PI + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Returns the complementary error function `erfc(x)`.
///
/// Uses the Chebyshev-fitted rational approximation with fractional error
/// below `1.2e-7` everywhere (Numerical Recipes style), which is ample for
/// p-values.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Returns the error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Probability density function of the standard normal distribution.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Cumulative distribution function of the standard normal distribution.
///
/// # Examples
///
/// ```
/// assert!((varstats::special::normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!((varstats::special::normal_cdf(1.96) - 0.975).abs() < 1e-4);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

// Acklam's coefficients for the inverse normal CDF.
const ACKLAM_A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239,
];
const ACKLAM_B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const ACKLAM_C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838,
    -2.549_732_539_343_734,
    4.374_664_141_464_968,
    2.938_163_982_698_783,
];
const ACKLAM_D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996,
    3.754_408_661_907_416,
];

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Uses Acklam's rational approximation followed by one Halley refinement
/// step; the result is accurate to roughly the accuracy of [`normal_cdf`].
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] unless `0 < p < 1`.
///
/// # Examples
///
/// ```
/// let z = varstats::special::normal_quantile(0.975).unwrap();
/// assert!((z - 1.959_964).abs() < 1e-4);
/// ```
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(invalid("p", format!("must be in (0, 1), got {p}")));
    }
    let p_low = 0.024_25;
    let p_high = 1.0 - p_low;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((ACKLAM_C[0] * q + ACKLAM_C[1]) * q + ACKLAM_C[2]) * q + ACKLAM_C[3]) * q
            + ACKLAM_C[4])
            * q
            + ACKLAM_C[5])
            / ((((ACKLAM_D[0] * q + ACKLAM_D[1]) * q + ACKLAM_D[2]) * q + ACKLAM_D[3]) * q + 1.0)
    } else if p <= p_high {
        let q = p - 0.5;
        let r = q * q;
        (((((ACKLAM_A[0] * r + ACKLAM_A[1]) * r + ACKLAM_A[2]) * r + ACKLAM_A[3]) * r
            + ACKLAM_A[4])
            * r
            + ACKLAM_A[5])
            * q
            / (((((ACKLAM_B[0] * r + ACKLAM_B[1]) * r + ACKLAM_B[2]) * r + ACKLAM_B[3]) * r
                + ACKLAM_B[4])
                * r
                + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((ACKLAM_C[0] * q + ACKLAM_C[1]) * q + ACKLAM_C[2]) * q + ACKLAM_C[3]) * q
            + ACKLAM_C[4])
            * q
            + ACKLAM_C[5])
            / ((((ACKLAM_D[0] * q + ACKLAM_D[1]) * q + ACKLAM_D[2]) * q + ACKLAM_D[3]) * q + 1.0)
    };
    // One Halley refinement step sharpens the approximation toward the
    // accuracy of the CDF itself.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

const MAX_CF_ITER: usize = 300;
const CF_EPS: f64 = 1e-14;
const CF_FPMIN: f64 = 1e-300;

/// Continued-fraction kernel for the incomplete beta function
/// (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < CF_FPMIN {
        d = CF_FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_CF_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < CF_FPMIN {
            d = CF_FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < CF_FPMIN {
            c = CF_FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < CF_FPMIN {
            d = CF_FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < CF_FPMIN {
            c = CF_FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < CF_EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence { routine: "beta_cf" })
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Errors
///
/// Returns an error for `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`, or if
/// the continued fraction fails to converge.
///
/// # Examples
///
/// ```
/// // I_x(1, 1) is the identity on [0, 1].
/// let v = varstats::special::incomplete_beta(1.0, 1.0, 0.3).unwrap();
/// assert!((v - 0.3).abs() < 1e-12);
/// ```
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(invalid("a", format!("must be > 0, got {a}")));
    }
    if b <= 0.0 {
        return Err(invalid("b", format!("must be > 0, got {b}")));
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(invalid("x", format!("must be in [0, 1], got {x}")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_bt = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let bt = ln_bt.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(bt * beta_cf(a, b, x)? / a)
    } else {
        Ok(1.0 - bt * beta_cf(b, a, 1.0 - x)? / b)
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Errors
///
/// Returns an error for `a <= 0` or `x < 0`, or on non-convergence.
pub fn incomplete_gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(invalid("a", format!("must be > 0, got {a}")));
    }
    if x < 0.0 {
        return Err(invalid("x", format!("must be >= 0, got {x}")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..MAX_CF_ITER {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * CF_EPS {
                let ln_pref = -x + a * x.ln() - ln_gamma(a);
                return Ok(sum * ln_pref.exp());
            }
        }
        Err(StatsError::NoConvergence {
            routine: "incomplete_gamma_series",
        })
    } else {
        // Continued-fraction representation of Q(a, x).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / CF_FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..=MAX_CF_ITER {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < CF_FPMIN {
                d = CF_FPMIN;
            }
            c = b + an / c;
            if c.abs() < CF_FPMIN {
                c = CF_FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < CF_EPS {
                let ln_pref = -x + a * x.ln() - ln_gamma(a);
                return Ok(1.0 - h * ln_pref.exp());
            }
        }
        Err(StatsError::NoConvergence {
            routine: "incomplete_gamma_cf",
        })
    }
}

/// CDF of the chi-squared distribution with `df` degrees of freedom.
///
/// # Errors
///
/// Returns an error for `df <= 0` or `x < 0`.
pub fn chi_squared_cdf(x: f64, df: f64) -> Result<f64> {
    if df <= 0.0 {
        return Err(invalid("df", format!("must be > 0, got {df}")));
    }
    if x < 0.0 {
        return Err(invalid("x", format!("must be >= 0, got {x}")));
    }
    incomplete_gamma_p(df / 2.0, x / 2.0)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Errors
///
/// Returns an error for `df <= 0`.
///
/// # Examples
///
/// ```
/// // With large df the t distribution approaches the normal.
/// let p = varstats::special::student_t_cdf(1.96, 1.0e6).unwrap();
/// assert!((p - 0.975).abs() < 1e-3);
/// ```
pub fn student_t_cdf(t: f64, df: f64) -> Result<f64> {
    if df <= 0.0 {
        return Err(invalid("df", format!("must be > 0, got {df}")));
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x)?;
    Ok(if t >= 0.0 { 1.0 - p } else { p })
}

/// Density of Student's t distribution with `df` degrees of freedom.
fn student_t_pdf(t: f64, df: f64) -> f64 {
    let ln_c =
        ln_gamma((df + 1.0) / 2.0) - ln_gamma(df / 2.0) - 0.5 * (df * std::f64::consts::PI).ln();
    (ln_c - (df + 1.0) / 2.0 * (1.0 + t * t / df).ln()).exp()
}

/// Quantile (inverse CDF) of Student's t distribution.
///
/// Starts from the normal quantile and polishes with safeguarded Newton
/// iterations; falls back to bisection when Newton leaves the bracket.
///
/// # Errors
///
/// Returns an error unless `0 < p < 1` and `df > 0`, or on non-convergence.
///
/// # Examples
///
/// ```
/// // t_{0.975} with 10 degrees of freedom is about 2.228.
/// let t = varstats::special::student_t_quantile(0.975, 10.0).unwrap();
/// assert!((t - 2.228_14).abs() < 1e-3);
/// ```
pub fn student_t_quantile(p: f64, df: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(invalid("p", format!("must be in (0, 1), got {p}")));
    }
    if df <= 0.0 {
        return Err(invalid("df", format!("must be > 0, got {df}")));
    }
    if (p - 0.5).abs() < 1e-15 {
        return Ok(0.0);
    }
    // Bracket the root. The t quantile is farther in the tail than the
    // normal quantile, so widen multiplicatively from the normal start.
    let z = normal_quantile(p)?;
    let (mut lo, mut hi);
    if z >= 0.0 {
        lo = 0.0;
        hi = z.max(1.0);
        while student_t_cdf(hi, df)? < p {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NoConvergence {
                    routine: "student_t_quantile_bracket",
                });
            }
        }
    } else {
        hi = 0.0;
        lo = z.min(-1.0);
        while student_t_cdf(lo, df)? > p {
            lo *= 2.0;
            if lo < -1e12 {
                return Err(StatsError::NoConvergence {
                    routine: "student_t_quantile_bracket",
                });
            }
        }
    }
    let mut x = z;
    if x < lo || x > hi {
        x = (lo + hi) / 2.0;
    }
    for _ in 0..200 {
        let f = student_t_cdf(x, df)? - p;
        if f.abs() < 1e-14 {
            return Ok(x);
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let deriv = student_t_pdf(x, df);
        let newton = x - f / deriv;
        x = if deriv > 0.0 && newton > lo && newton < hi {
            newton
        } else {
            (lo + hi) / 2.0
        };
        if hi - lo < 1e-13 * (1.0 + x.abs()) {
            return Ok(x);
        }
    }
    Ok(x)
}

/// CDF of the binomial distribution: `P(X <= k)` for `X ~ Binomial(n, p)`.
///
/// Computed exactly through the regularized incomplete beta function.
///
/// # Errors
///
/// Returns an error unless `0 <= p <= 1`.
pub fn binomial_cdf(k: i64, n: u64, p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid("p", format!("must be in [0, 1], got {p}")));
    }
    if k < 0 {
        return Ok(0.0);
    }
    let k = k as u64;
    if k >= n {
        return Ok(1.0);
    }
    if p == 0.0 {
        return Ok(1.0);
    }
    if p == 1.0 {
        return Ok(0.0);
    }
    // P(X <= k) = I_{1-p}(n - k, k + 1).
    incomplete_beta((n - k) as f64, (k + 1) as f64, 1.0 - p)
}

/// CDF of the F distribution with `d1` and `d2` degrees of freedom.
///
/// Computed through the regularized incomplete beta function:
/// `F(x) = I_{d1 x / (d1 x + d2)}(d1/2, d2/2)`.
///
/// # Errors
///
/// Returns an error for non-positive degrees of freedom or `x < 0`.
///
/// # Examples
///
/// ```
/// // The 95th percentile of F(2, 20) is about 3.49.
/// let p = varstats::special::f_cdf(3.4928, 2.0, 20.0).unwrap();
/// assert!((p - 0.95).abs() < 1e-3);
/// ```
pub fn f_cdf(x: f64, d1: f64, d2: f64) -> Result<f64> {
    if d1 <= 0.0 || d2 <= 0.0 {
        return Err(invalid("df", format!("must be > 0, got ({d1}, {d2})")));
    }
    if x < 0.0 {
        return Err(invalid("x", format!("must be >= 0, got {x}")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    incomplete_beta(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
}

/// Survival function of the Kolmogorov distribution,
/// `Q(lambda) = 2 * sum_{j>=1} (-1)^(j-1) exp(-2 j^2 lambda^2)`.
///
/// Used for asymptotic p-values of the Kolmogorov–Smirnov statistic.
pub fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let j = j as f64;
        let term = (-2.0 * j * j * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)! for integer n.
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(1/2) = sqrt(pi).
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Gamma(3/2) = sqrt(pi)/2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-7);
        close(erf(1.0), 0.842_700_79, 2e-7);
        close(erf(2.0), 0.995_322_27, 2e-7);
        close(erf(-1.0), -0.842_700_79, 2e-7);
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-7);
        close(normal_cdf(1.0), 0.841_344_75, 1e-6);
        close(normal_cdf(-1.0), 0.158_655_25, 1e-6);
        close(normal_cdf(1.959_963_985), 0.975, 1e-6);
        close(normal_cdf(2.575_829_3), 0.995, 1e-6);
    }

    #[test]
    fn normal_quantile_round_trips() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = normal_quantile(p).unwrap();
            close(normal_cdf(x), p, 1e-7);
        }
    }

    #[test]
    fn normal_quantile_reference_values() {
        close(normal_quantile(0.975).unwrap(), 1.959_964, 1e-5);
        close(normal_quantile(0.995).unwrap(), 2.575_829, 1e-5);
        close(normal_quantile(0.5).unwrap(), 0.0, 1e-7);
        close(normal_quantile(0.025).unwrap(), -1.959_964, 1e-5);
    }

    #[test]
    fn normal_quantile_rejects_bad_p() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.5).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }

    #[test]
    fn incomplete_beta_identity_parameters() {
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            close(incomplete_beta(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        let v1 = incomplete_beta(2.5, 3.5, 0.3).unwrap();
        let v2 = incomplete_beta(3.5, 2.5, 0.7).unwrap();
        close(v1, 1.0 - v2, 1e-12);
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2, 2) = 5/32 + ... =
        // 3x^2 - 2x^3 evaluated at 0.25 = 0.15625.
        close(incomplete_beta(2.0, 2.0, 0.25).unwrap(), 0.156_25, 1e-12);
        close(incomplete_beta(2.0, 2.0, 0.5).unwrap(), 0.5, 1e-12);
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // P(1, x) = 1 - exp(-x).
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            close(incomplete_gamma_p(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-12);
        }
        close(incomplete_gamma_p(0.5, 0.0).unwrap(), 0.0, 1e-15);
    }

    #[test]
    fn chi_squared_reference_values() {
        // Chi-squared with 2 df: CDF(x) = 1 - exp(-x/2).
        close(chi_squared_cdf(5.991_46, 2.0).unwrap(), 0.95, 1e-5);
        // Chi-squared 95th percentile with 1 df is 3.8415.
        close(chi_squared_cdf(3.841_46, 1.0).unwrap(), 0.95, 1e-5);
    }

    #[test]
    fn student_t_cdf_reference_values() {
        // t = 2.228, df = 10 gives 0.975.
        close(student_t_cdf(2.228_139, 10.0).unwrap(), 0.975, 1e-5);
        // Symmetry.
        let p = student_t_cdf(-1.3, 7.0).unwrap();
        let q = student_t_cdf(1.3, 7.0).unwrap();
        close(p + q, 1.0, 1e-12);
        close(student_t_cdf(0.0, 3.0).unwrap(), 0.5, 1e-12);
    }

    #[test]
    fn student_t_quantile_reference_values() {
        close(student_t_quantile(0.975, 10.0).unwrap(), 2.228_139, 1e-4);
        close(student_t_quantile(0.975, 1.0).unwrap(), 12.706_2, 1e-2);
        close(student_t_quantile(0.95, 5.0).unwrap(), 2.015_048, 1e-4);
        close(student_t_quantile(0.025, 10.0).unwrap(), -2.228_139, 1e-4);
    }

    #[test]
    fn student_t_quantile_round_trips() {
        for &df in &[1.0, 2.0, 5.0, 30.0, 200.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let t = student_t_quantile(p, df).unwrap();
                close(student_t_cdf(t, df).unwrap(), p, 1e-8);
            }
        }
    }

    #[test]
    fn binomial_cdf_small_exact() {
        // Binomial(4, 0.5): P(X <= 1) = (1 + 4) / 16.
        close(binomial_cdf(1, 4, 0.5).unwrap(), 5.0 / 16.0, 1e-12);
        close(binomial_cdf(4, 4, 0.5).unwrap(), 1.0, 1e-15);
        close(binomial_cdf(-1, 4, 0.5).unwrap(), 0.0, 1e-15);
        // P(X <= 2) for Binomial(5, 0.3) = 0.83692.
        close(binomial_cdf(2, 5, 0.3).unwrap(), 0.836_92, 1e-5);
    }

    #[test]
    fn binomial_cdf_degenerate_p() {
        close(binomial_cdf(3, 10, 0.0).unwrap(), 1.0, 1e-15);
        close(binomial_cdf(3, 10, 1.0).unwrap(), 0.0, 1e-15);
        close(binomial_cdf(10, 10, 1.0).unwrap(), 1.0, 1e-15);
    }

    #[test]
    fn f_cdf_reference_values() {
        // F(1, n) = t(n)^2: P(F <= t^2) = P(|T| <= t).
        let t = 2.228_139; // t_{0.975, 10}
        let p = f_cdf(t * t, 1.0, 10.0).unwrap();
        close(p, 0.95, 1e-4);
        // Median of F(d, d) is 1 for equal dfs.
        close(f_cdf(1.0, 7.0, 7.0).unwrap(), 0.5, 1e-10);
        close(f_cdf(0.0, 3.0, 3.0).unwrap(), 0.0, 1e-15);
        assert!(f_cdf(-1.0, 2.0, 2.0).is_err());
        assert!(f_cdf(1.0, 0.0, 2.0).is_err());
    }

    #[test]
    fn kolmogorov_survival_reference() {
        // Q(1.36) is about 0.049 (the classic 5% critical value).
        let q = kolmogorov_survival(1.358);
        assert!((q - 0.05).abs() < 0.002, "got {q}");
        close(kolmogorov_survival(0.0), 1.0, 1e-12);
        assert!(kolmogorov_survival(3.0) < 1e-6);
    }
}
