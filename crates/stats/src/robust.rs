//! Robust location estimators and robust standardization.
//!
//! Between "the mean" (efficient, fragile) and "the median" (robust, less
//! efficient) sits a family of estimators the measurement literature
//! leans on: trimmed and winsorized means, and the Hodges–Lehmann
//! pseudo-median with its exact distribution-free confidence interval
//! (the one-sample companion of the Mann–Whitney test).
//!
//! The median/MAD pair also powers robust standardization
//! ([`robust_zscore`], [`robust_zscores`]): the regression sentinel
//! scores every incoming run against its history with these z-scores,
//! because a single pathological run must not be able to drag the
//! baseline it is judged against (mean/stddev z-scores have a breakdown
//! point of 0; median/MAD hold up to 50% contamination).

use crate::ci::{check_confidence, ConfidenceInterval};
use crate::error::{check_finite, invalid, Result, StatsError};
use crate::special::normal_quantile;

fn sorted_copy(data: &[f64]) -> Result<Vec<f64>> {
    check_finite(data)?;
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    Ok(v)
}

/// The `fraction`-trimmed mean: drops the lowest and highest `fraction`
/// of samples and averages the rest.
///
/// # Errors
///
/// Returns an error on invalid input, `fraction` outside `[0, 0.5)`, or
/// if trimming would discard everything.
///
/// # Examples
///
/// ```
/// use varstats::robust::trimmed_mean;
///
/// let data = [1.0, 2.0, 3.0, 4.0, 100.0];
/// // 20% trim drops the 1.0 and the 100.0.
/// assert_eq!(trimmed_mean(&data, 0.2).unwrap(), 3.0);
/// ```
pub fn trimmed_mean(data: &[f64], fraction: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&fraction) {
        return Err(invalid(
            "fraction",
            format!("must be in [0, 0.5), got {fraction}"),
        ));
    }
    let sorted = sorted_copy(data)?;
    let k = (sorted.len() as f64 * fraction).floor() as usize;
    let kept = &sorted[k..sorted.len() - k];
    if kept.is_empty() {
        return Err(StatsError::TooFewSamples {
            needed: 2 * k + 1,
            got: sorted.len(),
        });
    }
    Ok(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// The `fraction`-winsorized mean: clamps the lowest and highest
/// `fraction` of samples to the trim boundaries and averages everything.
///
/// # Errors
///
/// Same domain checks as [`trimmed_mean`].
pub fn winsorized_mean(data: &[f64], fraction: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&fraction) {
        return Err(invalid(
            "fraction",
            format!("must be in [0, 0.5), got {fraction}"),
        ));
    }
    let sorted = sorted_copy(data)?;
    let n = sorted.len();
    let k = (n as f64 * fraction).floor() as usize;
    if 2 * k >= n {
        return Err(StatsError::TooFewSamples {
            needed: 2 * k + 1,
            got: n,
        });
    }
    let lo = sorted[k];
    let hi = sorted[n - 1 - k];
    let sum: f64 = sorted.iter().map(|&x| x.clamp(lo, hi)).sum();
    Ok(sum / n as f64)
}

/// The Hodges–Lehmann estimator: the median of all pairwise Walsh
/// averages `(x_i + x_j) / 2`, `i <= j`.
///
/// More efficient than the median under near-normality, yet robust with a
/// breakdown point of ~29%.
///
/// # Errors
///
/// Returns an error on invalid input.
///
/// # Examples
///
/// ```
/// use varstats::robust::hodges_lehmann;
///
/// let hl = hodges_lehmann(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(hl, 3.0);
/// ```
pub fn hodges_lehmann(data: &[f64]) -> Result<f64> {
    check_finite(data)?;
    let averages = walsh_averages(data);
    crate::quantile::median(&averages)
}

/// All Walsh averages of a sample, sorted ascending.
fn walsh_averages(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut averages = Vec::with_capacity(n * (n + 1) / 2);
    for i in 0..n {
        for j in i..n {
            averages.push((data[i] + data[j]) / 2.0);
        }
    }
    averages.sort_by(|a, b| a.partial_cmp(b).expect("finite averages"));
    averages
}

/// Robust location and scale of a sample: the median paired with the
/// normal-consistent MAD.
///
/// Heavily tied samples (quantized timers, counters) can collapse the
/// MAD to zero even though the sample varies; the scale then falls back
/// to the normal-consistent IQR (`/ 1.349`) and finally to the standard
/// deviation, the same ladder [`crate::changepoint::robust_noise_sigma`]
/// uses. A returned scale of exactly `0.0` therefore means the sample is
/// constant. Every rung of the ladder is shift- and (positive-)
/// scale-equivariant, so z-scores built from this pair are too.
///
/// # Errors
///
/// Returns an error on invalid input or fewer than 2 samples.
pub fn robust_location_scale(data: &[f64]) -> Result<(f64, f64)> {
    check_finite(data)?;
    if data.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: data.len(),
        });
    }
    let location = crate::quantile::median(data)?;
    let mad = crate::descriptive::mad(data)?;
    if mad > 0.0 {
        return Ok((location, mad));
    }
    let q1 = crate::quantile::quantile(data, 0.25, crate::quantile::QuantileMethod::Linear)?;
    let q3 = crate::quantile::quantile(data, 0.75, crate::quantile::QuantileMethod::Linear)?;
    let iqr = q3 - q1;
    if iqr > 0.0 {
        return Ok((location, iqr / 1.349));
    }
    Ok((location, crate::descriptive::std_dev(data)?))
}

/// Standardizes `x` against `(location, scale)` from
/// [`robust_location_scale`], defining the constant-sample case: with
/// `scale == 0` the z-score is `0` when `x` equals the location and
/// `±inf` otherwise — any deviation from a perfectly constant baseline
/// is infinitely surprising.
fn standardize(x: f64, location: f64, scale: f64) -> f64 {
    if scale > 0.0 {
        (x - location) / scale
    } else if x == location {
        0.0
    } else if x > location {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    }
}

/// Robust z-score of one new observation `x` against a reference sample:
/// `(x - median) / MAD` with the fallback ladder and constant-sample
/// semantics of [`robust_location_scale`]. The reference is *not*
/// expected to contain `x` — this is the auditor's "score the incoming
/// run against history" primitive.
///
/// # Errors
///
/// Returns an error on invalid input, a non-finite `x`, or a reference
/// of fewer than 2 samples.
///
/// # Examples
///
/// ```
/// use varstats::robust::robust_zscore;
///
/// let history = [10.0, 10.5, 9.5, 10.2, 9.8];
/// assert!(robust_zscore(&history, 10.1).unwrap().abs() < 1.0);
/// assert!(robust_zscore(&history, 25.0).unwrap() > 10.0);
/// ```
pub fn robust_zscore(reference: &[f64], x: f64) -> Result<f64> {
    if !x.is_finite() {
        return Err(invalid("x", format!("must be finite, got {x}")));
    }
    let (location, scale) = robust_location_scale(reference)?;
    Ok(standardize(x, location, scale))
}

/// Robust z-scores of every sample against the whole sample's median and
/// MAD (fallback ladder and constant-sample semantics of
/// [`robust_location_scale`]). Shift- and positive-scale-equivariant:
/// `robust_zscores(a*x + b) == robust_zscores(x)` for `a > 0`.
///
/// # Errors
///
/// Returns an error on invalid input or fewer than 3 samples.
pub fn robust_zscores(data: &[f64]) -> Result<Vec<f64>> {
    check_finite(data)?;
    if data.len() < 3 {
        return Err(StatsError::TooFewSamples {
            needed: 3,
            got: data.len(),
        });
    }
    let (location, scale) = robust_location_scale(data)?;
    Ok(data
        .iter()
        .map(|&x| standardize(x, location, scale))
        .collect())
}

/// Distribution-free confidence interval for the Hodges–Lehmann
/// pseudo-median, from the Wilcoxon signed-rank distribution (normal
/// approximation to the rank count).
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 6 samples, or an invalid
/// confidence level.
pub fn hodges_lehmann_ci(data: &[f64], confidence: f64) -> Result<ConfidenceInterval> {
    check_finite(data)?;
    check_confidence(confidence)?;
    let n = data.len();
    if n < 6 {
        return Err(StatsError::TooFewSamples { needed: 6, got: n });
    }
    let averages = walsh_averages(data);
    let m = averages.len(); // n(n+1)/2 Walsh averages.
    let nf = n as f64;
    let z = normal_quantile(0.5 + confidence / 2.0)?;
    // Wilcoxon signed-rank mean and variance.
    let mean = nf * (nf + 1.0) / 4.0;
    let sd = (nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0).sqrt();
    // Rank cutoff: the k-th smallest / largest Walsh average.
    let k = (mean - z * sd).floor().max(0.0) as usize;
    let lower = averages[k.min(m - 1)];
    let upper = averages[m - 1 - k.min(m - 1)];
    let estimate = crate::quantile::median(&averages)?;
    Ok(ConfidenceInterval {
        estimate,
        lower: lower.min(upper),
        upper: lower.max(upper),
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_known_values() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(trimmed_mean(&data, 0.2).unwrap(), 3.0);
        assert_eq!(trimmed_mean(&data, 0.0).unwrap(), 22.0);
    }

    #[test]
    fn winsorized_mean_known_values() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        // k = 1: clamp to [2, 4]: (2+2+3+4+4)/5 = 3.
        assert_eq!(winsorized_mean(&data, 0.2).unwrap(), 3.0);
        assert_eq!(winsorized_mean(&data, 0.0).unwrap(), 22.0);
    }

    #[test]
    fn robust_estimators_shrug_off_outliers() {
        let clean: Vec<f64> = (1..=20).map(f64::from).collect();
        let mut dirty = clean.clone();
        dirty[19] = 1.0e6;
        let t_clean = trimmed_mean(&clean, 0.1).unwrap();
        let t_dirty = trimmed_mean(&dirty, 0.1).unwrap();
        assert!((t_clean - t_dirty).abs() < 1.5);
        let hl_clean = hodges_lehmann(&clean).unwrap();
        let hl_dirty = hodges_lehmann(&dirty).unwrap();
        assert!((hl_clean - hl_dirty).abs() < 1.5);
    }

    #[test]
    fn hodges_lehmann_symmetric_data() {
        // For symmetric data HL equals the center.
        let data = [-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0];
        assert_eq!(hodges_lehmann(&data).unwrap(), 0.0);
    }

    #[test]
    fn hodges_lehmann_ci_brackets_the_estimate() {
        let data: Vec<f64> = (0..40).map(|i| 100.0 + ((i * 13) % 17) as f64).collect();
        let ci = hodges_lehmann_ci(&data, 0.95).unwrap();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.width() > 0.0);
        let ci99 = hodges_lehmann_ci(&data, 0.99).unwrap();
        assert!(ci99.width() >= ci.width());
    }

    #[test]
    fn hodges_lehmann_ci_coverage_on_uniform_data() {
        // Uniform(0, 2) is symmetric about 1: the pseudo-median is 1.
        let mut state = 5u64;
        let mut uniform = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            2.0 * ((z >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut hits = 0;
        let trials = 200;
        for _ in 0..trials {
            let data: Vec<f64> = (0..25).map(|_| uniform()).collect();
            let ci = hodges_lehmann_ci(&data, 0.95).unwrap();
            if ci.contains(1.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage >= 0.90, "coverage {coverage}");
    }

    #[test]
    fn zscores_on_clean_data_center_and_scale() {
        let data: Vec<f64> = (1..=9).map(f64::from).collect();
        let z = robust_zscores(&data).unwrap();
        assert_eq!(z[4], 0.0, "the median scores 0");
        assert!(z[0] < 0.0 && z[8] > 0.0);
        assert_eq!(z[0], -z[8], "symmetric data scores symmetrically");
    }

    #[test]
    fn zscores_constant_series_mad_zero() {
        // MAD, IQR, and stddev are all 0: every in-place score is 0, and
        // any deviation from the constant baseline is infinitely
        // surprising.
        let constant = vec![5.0; 8];
        assert!(robust_zscores(&constant).unwrap().iter().all(|&z| z == 0.0));
        assert_eq!(robust_zscore(&constant, 5.0).unwrap(), 0.0);
        assert_eq!(robust_zscore(&constant, 5.1).unwrap(), f64::INFINITY);
        assert_eq!(robust_zscore(&constant, 4.9).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn zscores_too_few_samples() {
        // robust_zscores needs n >= 3; robust_zscore needs 2 reference
        // points (the auditor's minimum usable history).
        assert!(robust_zscores(&[]).is_err());
        assert!(robust_zscores(&[1.0]).is_err());
        assert!(robust_zscores(&[1.0, 2.0]).is_err());
        assert!(robust_zscore(&[1.0], 2.0).is_err());
        assert!(robust_zscore(&[1.0, 2.0], 3.0).is_ok());
    }

    #[test]
    fn zscores_single_outlier_stands_out_without_masking() {
        // A mean/stddev z-score lets one huge outlier inflate the scale
        // it is judged by (self-masking). The MAD ignores it: the
        // outlier scores enormous, the clean points stay small.
        let mut data: Vec<f64> = (1..=20).map(f64::from).collect();
        data.push(1.0e6);
        let z = robust_zscores(&data).unwrap();
        assert!(z[20] > 1e4, "outlier z {}", z[20]);
        assert!(z[..20].iter().all(|z| z.abs() < 2.0), "{:?}", &z[..20]);
    }

    #[test]
    fn zscores_tied_data_fall_back_to_iqr() {
        // 75% ties collapse the MAD to 0 while the sample still varies;
        // the IQR rung must keep the scale finite and positive.
        let data = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 3.0];
        let (_, scale) = robust_location_scale(&data).unwrap();
        assert!(scale > 0.0 && scale.is_finite());
        let z = robust_zscores(&data).unwrap();
        assert!(z.iter().all(|z| z.is_finite()), "{z:?}");
        assert!(z[7] > z[6]);
    }

    #[test]
    fn zscore_rejects_non_finite_observation() {
        let history = [1.0, 2.0, 3.0];
        assert!(robust_zscore(&history, f64::NAN).is_err());
        assert!(robust_zscore(&history, f64::INFINITY).is_err());
    }

    #[test]
    fn validation() {
        assert!(trimmed_mean(&[], 0.1).is_err());
        assert!(trimmed_mean(&[1.0], 0.5).is_err());
        assert!(trimmed_mean(&[1.0], -0.1).is_err());
        assert!(winsorized_mean(&[1.0, 2.0], 0.5).is_err());
        assert!(hodges_lehmann(&[f64::NAN]).is_err());
        assert!(hodges_lehmann_ci(&[1.0, 2.0, 3.0], 0.95).is_err());
        assert!(hodges_lehmann_ci(&(0..10).map(f64::from).collect::<Vec<_>>(), 1.5).is_err());
    }
}
