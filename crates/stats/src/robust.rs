//! Robust location estimators.
//!
//! Between "the mean" (efficient, fragile) and "the median" (robust, less
//! efficient) sits a family of estimators the measurement literature
//! leans on: trimmed and winsorized means, and the Hodges–Lehmann
//! pseudo-median with its exact distribution-free confidence interval
//! (the one-sample companion of the Mann–Whitney test).

use crate::ci::{check_confidence, ConfidenceInterval};
use crate::error::{check_finite, invalid, Result, StatsError};
use crate::special::normal_quantile;

fn sorted_copy(data: &[f64]) -> Result<Vec<f64>> {
    check_finite(data)?;
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    Ok(v)
}

/// The `fraction`-trimmed mean: drops the lowest and highest `fraction`
/// of samples and averages the rest.
///
/// # Errors
///
/// Returns an error on invalid input, `fraction` outside `[0, 0.5)`, or
/// if trimming would discard everything.
///
/// # Examples
///
/// ```
/// use varstats::robust::trimmed_mean;
///
/// let data = [1.0, 2.0, 3.0, 4.0, 100.0];
/// // 20% trim drops the 1.0 and the 100.0.
/// assert_eq!(trimmed_mean(&data, 0.2).unwrap(), 3.0);
/// ```
pub fn trimmed_mean(data: &[f64], fraction: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&fraction) {
        return Err(invalid(
            "fraction",
            format!("must be in [0, 0.5), got {fraction}"),
        ));
    }
    let sorted = sorted_copy(data)?;
    let k = (sorted.len() as f64 * fraction).floor() as usize;
    let kept = &sorted[k..sorted.len() - k];
    if kept.is_empty() {
        return Err(StatsError::TooFewSamples {
            needed: 2 * k + 1,
            got: sorted.len(),
        });
    }
    Ok(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// The `fraction`-winsorized mean: clamps the lowest and highest
/// `fraction` of samples to the trim boundaries and averages everything.
///
/// # Errors
///
/// Same domain checks as [`trimmed_mean`].
pub fn winsorized_mean(data: &[f64], fraction: f64) -> Result<f64> {
    if !(0.0..0.5).contains(&fraction) {
        return Err(invalid(
            "fraction",
            format!("must be in [0, 0.5), got {fraction}"),
        ));
    }
    let sorted = sorted_copy(data)?;
    let n = sorted.len();
    let k = (n as f64 * fraction).floor() as usize;
    if 2 * k >= n {
        return Err(StatsError::TooFewSamples {
            needed: 2 * k + 1,
            got: n,
        });
    }
    let lo = sorted[k];
    let hi = sorted[n - 1 - k];
    let sum: f64 = sorted.iter().map(|&x| x.clamp(lo, hi)).sum();
    Ok(sum / n as f64)
}

/// The Hodges–Lehmann estimator: the median of all pairwise Walsh
/// averages `(x_i + x_j) / 2`, `i <= j`.
///
/// More efficient than the median under near-normality, yet robust with a
/// breakdown point of ~29%.
///
/// # Errors
///
/// Returns an error on invalid input.
///
/// # Examples
///
/// ```
/// use varstats::robust::hodges_lehmann;
///
/// let hl = hodges_lehmann(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(hl, 3.0);
/// ```
pub fn hodges_lehmann(data: &[f64]) -> Result<f64> {
    check_finite(data)?;
    let averages = walsh_averages(data);
    crate::quantile::median(&averages)
}

/// All Walsh averages of a sample, sorted ascending.
fn walsh_averages(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut averages = Vec::with_capacity(n * (n + 1) / 2);
    for i in 0..n {
        for j in i..n {
            averages.push((data[i] + data[j]) / 2.0);
        }
    }
    averages.sort_by(|a, b| a.partial_cmp(b).expect("finite averages"));
    averages
}

/// Distribution-free confidence interval for the Hodges–Lehmann
/// pseudo-median, from the Wilcoxon signed-rank distribution (normal
/// approximation to the rank count).
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 6 samples, or an invalid
/// confidence level.
pub fn hodges_lehmann_ci(data: &[f64], confidence: f64) -> Result<ConfidenceInterval> {
    check_finite(data)?;
    check_confidence(confidence)?;
    let n = data.len();
    if n < 6 {
        return Err(StatsError::TooFewSamples { needed: 6, got: n });
    }
    let averages = walsh_averages(data);
    let m = averages.len(); // n(n+1)/2 Walsh averages.
    let nf = n as f64;
    let z = normal_quantile(0.5 + confidence / 2.0)?;
    // Wilcoxon signed-rank mean and variance.
    let mean = nf * (nf + 1.0) / 4.0;
    let sd = (nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0).sqrt();
    // Rank cutoff: the k-th smallest / largest Walsh average.
    let k = (mean - z * sd).floor().max(0.0) as usize;
    let lower = averages[k.min(m - 1)];
    let upper = averages[m - 1 - k.min(m - 1)];
    let estimate = crate::quantile::median(&averages)?;
    Ok(ConfidenceInterval {
        estimate,
        lower: lower.min(upper),
        upper: lower.max(upper),
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_known_values() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(trimmed_mean(&data, 0.2).unwrap(), 3.0);
        assert_eq!(trimmed_mean(&data, 0.0).unwrap(), 22.0);
    }

    #[test]
    fn winsorized_mean_known_values() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        // k = 1: clamp to [2, 4]: (2+2+3+4+4)/5 = 3.
        assert_eq!(winsorized_mean(&data, 0.2).unwrap(), 3.0);
        assert_eq!(winsorized_mean(&data, 0.0).unwrap(), 22.0);
    }

    #[test]
    fn robust_estimators_shrug_off_outliers() {
        let clean: Vec<f64> = (1..=20).map(f64::from).collect();
        let mut dirty = clean.clone();
        dirty[19] = 1.0e6;
        let t_clean = trimmed_mean(&clean, 0.1).unwrap();
        let t_dirty = trimmed_mean(&dirty, 0.1).unwrap();
        assert!((t_clean - t_dirty).abs() < 1.5);
        let hl_clean = hodges_lehmann(&clean).unwrap();
        let hl_dirty = hodges_lehmann(&dirty).unwrap();
        assert!((hl_clean - hl_dirty).abs() < 1.5);
    }

    #[test]
    fn hodges_lehmann_symmetric_data() {
        // For symmetric data HL equals the center.
        let data = [-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0];
        assert_eq!(hodges_lehmann(&data).unwrap(), 0.0);
    }

    #[test]
    fn hodges_lehmann_ci_brackets_the_estimate() {
        let data: Vec<f64> = (0..40).map(|i| 100.0 + ((i * 13) % 17) as f64).collect();
        let ci = hodges_lehmann_ci(&data, 0.95).unwrap();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.width() > 0.0);
        let ci99 = hodges_lehmann_ci(&data, 0.99).unwrap();
        assert!(ci99.width() >= ci.width());
    }

    #[test]
    fn hodges_lehmann_ci_coverage_on_uniform_data() {
        // Uniform(0, 2) is symmetric about 1: the pseudo-median is 1.
        let mut state = 5u64;
        let mut uniform = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            2.0 * ((z >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut hits = 0;
        let trials = 200;
        for _ in 0..trials {
            let data: Vec<f64> = (0..25).map(|_| uniform()).collect();
            let ci = hodges_lehmann_ci(&data, 0.95).unwrap();
            if ci.contains(1.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage >= 0.90, "coverage {coverage}");
    }

    #[test]
    fn validation() {
        assert!(trimmed_mean(&[], 0.1).is_err());
        assert!(trimmed_mean(&[1.0], 0.5).is_err());
        assert!(trimmed_mean(&[1.0], -0.1).is_err());
        assert!(winsorized_mean(&[1.0, 2.0], 0.5).is_err());
        assert!(hodges_lehmann(&[f64::NAN]).is_err());
        assert!(hodges_lehmann_ci(&[1.0, 2.0, 3.0], 0.95).is_err());
        assert!(hodges_lehmann_ci(&(0..10).map(f64::from).collect::<Vec<_>>(), 1.5).is_err());
    }
}
