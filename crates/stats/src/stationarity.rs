//! Stationarity testing (Augmented Dickey–Fuller).
//!
//! CONFIRM and every CI in this library assume the measurement process is
//! stationary — no drift, no level shifts. Changepoint detection finds
//! discrete shifts; the ADF test (the one Lancet popularized for latency
//! measurement) asks the broader question: *does this series revert to a
//! stable level at all?*
//!
//! The regression is the standard constant-only ADF:
//! `dy_t = alpha + gamma * y_{t-1} + sum_i beta_i * dy_{t-i} + e_t`,
//! with `t = gamma_hat / se(gamma_hat)` compared against the
//! Dickey–Fuller distribution (MacKinnon large-sample critical values,
//! linearly interpolated for an approximate p-value).

use serde::{Deserialize, Serialize};

use crate::error::{check_finite, invalid, Result, StatsError};

/// Result of an ADF test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdfResult {
    /// The ADF t-statistic (more negative = more stationary).
    pub statistic: f64,
    /// Approximate p-value (interpolated from the DF table; values
    /// outside the table clamp to 0.001 / 0.999).
    pub p_value: f64,
    /// Number of lagged difference terms included.
    pub lags: usize,
}

impl AdfResult {
    /// Whether the unit-root null is rejected at `alpha` — i.e. the
    /// series looks stationary.
    pub fn is_stationary(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Large-sample Dickey–Fuller quantiles for the constant-only case:
/// `(p, critical value)`.
const DF_TABLE: [(f64, f64); 8] = [
    (0.01, -3.43),
    (0.025, -3.12),
    (0.05, -2.86),
    (0.10, -2.57),
    (0.90, -0.44),
    (0.95, -0.07),
    (0.975, 0.23),
    (0.99, 0.60),
];

fn df_p_value(stat: f64) -> f64 {
    if stat <= DF_TABLE[0].1 {
        return 0.001;
    }
    if stat >= DF_TABLE[DF_TABLE.len() - 1].1 {
        return 0.999;
    }
    for w in DF_TABLE.windows(2) {
        let (p0, c0) = w[0];
        let (p1, c1) = w[1];
        if stat >= c0 && stat <= c1 {
            let frac = (stat - c0) / (c1 - c0);
            return p0 + frac * (p1 - p0);
        }
    }
    0.5
}

/// Solves the symmetric positive-definite system `a x = b` in place via
/// Gaussian elimination with partial pivoting (tiny systems only).
// Index-based loops mirror the textbook elimination and stay readable.
#[allow(clippy::needless_range_loop)]
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(StatsError::NoConvergence { routine: "adf_ols" });
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Ok(x)
}

/// Augmented Dickey–Fuller test with `lags` lagged difference terms
/// (constant, no trend). Use `lags = 0` for the plain DF test; Schwert's
/// rule of thumb is `lags ~ (12 (n/100)^0.25)` for long series.
///
/// # Errors
///
/// Returns an error on invalid input, too few observations
/// (`n < lags + 15`), or a singular regression (constant series).
///
/// # Examples
///
/// ```
/// use varstats::stationarity::adf_test;
///
/// // White noise around a level is stationary.
/// let series: Vec<f64> = (0..200).map(|i| 10.0 + ((i * 37) % 11) as f64 * 0.1).collect();
/// let r = adf_test(&series, 2).unwrap();
/// assert!(r.is_stationary(0.05));
/// ```
// The X'X accumulation is clearest with explicit matrix indices.
#[allow(clippy::needless_range_loop)]
pub fn adf_test(series: &[f64], lags: usize) -> Result<AdfResult> {
    check_finite(series)?;
    let n = series.len();
    if n < lags + 15 {
        return Err(StatsError::TooFewSamples {
            needed: lags + 15,
            got: n,
        });
    }
    if lags > 20 {
        return Err(invalid("lags", format!("at most 20 supported, got {lags}")));
    }
    // Build the regression: rows t = lags+1 .. n-1 (0-based on diffs).
    let diffs: Vec<f64> = series.windows(2).map(|w| w[1] - w[0]).collect();
    let rows = diffs.len() - lags;
    let k = 2 + lags; // constant, y_{t-1}, lagged diffs.
                      // Design matrix X (rows x k) and response y.
    let mut xtx = vec![vec![0.0; k]; k];
    let mut xty = vec![0.0; k];
    let mut regressors = vec![0.0; k];
    let mut design: Vec<Vec<f64>> = Vec::with_capacity(rows);
    let mut response: Vec<f64> = Vec::with_capacity(rows);
    for t in lags..diffs.len() {
        regressors[0] = 1.0;
        regressors[1] = series[t]; // y_{t-1} for dy_t = y_{t+1}-y_t at index t.
        for (i, slot) in regressors[2..2 + lags].iter_mut().enumerate() {
            *slot = diffs[t - 1 - i];
        }
        let y = diffs[t];
        for a in 0..k {
            for b in a..k {
                xtx[a][b] += regressors[a] * regressors[b];
            }
            xty[a] += regressors[a] * y;
        }
        design.push(regressors.clone());
        response.push(y);
    }
    for a in 1..k {
        for b in 0..a {
            xtx[a][b] = xtx[b][a];
        }
    }
    let beta = solve(xtx.clone(), xty)?;
    // Residual variance.
    let mut ssr = 0.0;
    for (x, &y) in design.iter().zip(response.iter()) {
        let fit: f64 = x.iter().zip(beta.iter()).map(|(a, b)| a * b).sum();
        let r = y - fit;
        ssr += r * r;
    }
    let dof = rows as f64 - k as f64;
    if dof <= 0.0 {
        return Err(StatsError::TooFewSamples {
            needed: k + 1,
            got: rows,
        });
    }
    let sigma2 = ssr / dof;
    // se(gamma) = sqrt(sigma2 * (X'X)^-1 [1][1]); get the column of the
    // inverse by solving X'X v = e_1.
    let mut e1 = vec![0.0; k];
    e1[1] = 1.0;
    let v = solve(xtx, e1)?;
    let se = (sigma2 * v[1]).sqrt();
    if se <= 0.0 || !se.is_finite() {
        return Err(StatsError::ZeroVariance);
    }
    let statistic = beta[1] / se;
    Ok(AdfResult {
        statistic,
        p_value: df_p_value(statistic),
        lags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn white_noise_is_stationary() {
        let mut u = splitmix(1);
        let series: Vec<f64> = (0..300).map(|_| 100.0 + u()).collect();
        let r = adf_test(&series, 2).unwrap();
        assert!(
            r.is_stationary(0.05),
            "stat {} p {}",
            r.statistic,
            r.p_value
        );
        assert!(r.statistic < -5.0);
    }

    #[test]
    fn random_walk_is_not_stationary() {
        let mut u = splitmix(2);
        let mut level = 100.0;
        let series: Vec<f64> = (0..300)
            .map(|_| {
                level += u() - 0.5;
                level
            })
            .collect();
        let r = adf_test(&series, 2).unwrap();
        assert!(
            !r.is_stationary(0.05),
            "stat {} p {}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn trending_series_is_not_stationary() {
        let mut u = splitmix(3);
        let series: Vec<f64> = (0..300)
            .map(|i| 100.0 + 0.05 * i as f64 + 0.2 * (u() - 0.5))
            .collect();
        let r = adf_test(&series, 1).unwrap();
        assert!(!r.is_stationary(0.01), "stat {}", r.statistic);
    }

    #[test]
    fn ar1_with_strong_mean_reversion_is_stationary() {
        let mut u = splitmix(4);
        let mut y = 0.0;
        let series: Vec<f64> = (0..400)
            .map(|_| {
                y = 0.5 * y + (u() - 0.5);
                y + 50.0
            })
            .collect();
        let r = adf_test(&series, 3).unwrap();
        assert!(r.is_stationary(0.05), "stat {}", r.statistic);
    }

    #[test]
    fn p_value_interpolation_is_monotone() {
        let mut last = 0.0;
        for stat in [-5.0, -3.43, -3.0, -2.86, -2.0, -1.0, 0.0, 1.0] {
            let p = df_p_value(stat);
            assert!(p >= last, "p({stat}) = {p} < {last}");
            last = p;
        }
        assert_eq!(df_p_value(-10.0), 0.001);
        assert_eq!(df_p_value(5.0), 0.999);
    }

    #[test]
    fn lag_count_is_recorded_and_validated() {
        let mut u = splitmix(5);
        let series: Vec<f64> = (0..100).map(|_| u()).collect();
        let r = adf_test(&series, 4).unwrap();
        assert_eq!(r.lags, 4);
        assert!(adf_test(&series, 25).is_err());
        assert!(adf_test(&series[..10], 0).is_err());
        assert!(adf_test(&[5.0; 100], 0).is_err());
    }
}
