//! Parametric sample-size (repetition-count) estimation.
//!
//! Classical methodology (Jain, *The Art of Computer Systems Performance
//! Analysis*, 1991) prescribes a closed-form repetition count assuming
//! normally distributed samples:
//!
//! ```text
//! n = (100 * z * s / (r * x))^2
//! ```
//!
//! where `z` is the normal variate of the confidence level, `s` the sample
//! standard deviation, `x` the sample mean, and `r` the target error as a
//! *percentage* of the mean. The paper contrasts this with the
//! non-parametric CONFIRM procedure (see the `confirm` crate); the
//! comparison is experiment T3.

use serde::{Deserialize, Serialize};

use crate::descriptive::Moments;
use crate::error::{check_finite, invalid, Result, StatsError};
use crate::special::normal_quantile;

/// Result of a parametric repetition estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParametricEstimate {
    /// Estimated number of repetitions (rounded up, at least 1).
    pub repetitions: usize,
    /// The raw (un-rounded) value of Jain's formula.
    pub raw: f64,
    /// Coefficient of variation of the pilot data used.
    pub cov: f64,
}

/// Jain's closed-form repetition estimate from pilot measurements.
///
/// `rel_error` is the target half-width as a *fraction* of the mean (the
/// paper's ±1% criterion is `0.01`), and `confidence` the CI level.
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 2 pilot samples, a zero
/// mean, or out-of-range `rel_error`/`confidence`.
///
/// # Examples
///
/// ```
/// use varstats::samplesize::jain_sample_size;
///
/// // Pilot data with CoV ~ 2% needs ~16 repetitions for +/-1% at 95%.
/// let pilot: Vec<f64> = (0..30).map(|i| 100.0 + 2.0 * ((i * 7 % 13) as f64 / 6.0 - 1.0)).collect();
/// let est = jain_sample_size(&pilot, 0.01, 0.95).unwrap();
/// assert!(est.repetitions >= 1);
/// ```
pub fn jain_sample_size(
    pilot: &[f64],
    rel_error: f64,
    confidence: f64,
) -> Result<ParametricEstimate> {
    check_finite(pilot)?;
    if pilot.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: pilot.len(),
        });
    }
    if !(rel_error > 0.0 && rel_error < 1.0) {
        return Err(invalid(
            "rel_error",
            format!("must be in (0, 1), got {rel_error}"),
        ));
    }
    crate::ci::check_confidence(confidence)?;
    let m: Moments = pilot.iter().copied().collect();
    if m.mean() == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let z = normal_quantile(0.5 + confidence / 2.0)?;
    // Jain's formula with r expressed in percent: n = (100 z s / (r x))^2.
    let r_percent = rel_error * 100.0;
    let raw = (100.0 * z * m.std_dev() / (r_percent * m.mean().abs())).powi(2);
    Ok(ParametricEstimate {
        repetitions: raw.ceil().max(1.0) as usize,
        raw,
        cov: m.std_dev() / m.mean().abs(),
    })
}

/// Jain's formula from a known coefficient of variation rather than pilot
/// data: `n = (z * cov / rel_error)^2`.
///
/// # Errors
///
/// Returns an error on out-of-range arguments.
pub fn jain_sample_size_from_cov(
    cov: f64,
    rel_error: f64,
    confidence: f64,
) -> Result<ParametricEstimate> {
    if cov < 0.0 || !cov.is_finite() {
        return Err(invalid("cov", format!("must be >= 0, got {cov}")));
    }
    if !(rel_error > 0.0 && rel_error < 1.0) {
        return Err(invalid(
            "rel_error",
            format!("must be in (0, 1), got {rel_error}"),
        ));
    }
    crate::ci::check_confidence(confidence)?;
    let z = normal_quantile(0.5 + confidence / 2.0)?;
    let raw = (z * cov / rel_error).powi(2);
    Ok(ParametricEstimate {
        repetitions: raw.ceil().max(1.0) as usize,
        raw,
        cov,
    })
}

/// Conservative distribution-free bound from Chebyshev's inequality:
/// `n >= cov^2 / (alpha * rel_error^2)`.
///
/// Always valid but typically far larger than Jain's estimate; included as
/// the "no assumptions at all" end of the spectrum.
///
/// # Errors
///
/// Same domain checks as [`jain_sample_size_from_cov`].
pub fn chebyshev_sample_size(
    cov: f64,
    rel_error: f64,
    confidence: f64,
) -> Result<ParametricEstimate> {
    if cov < 0.0 || !cov.is_finite() {
        return Err(invalid("cov", format!("must be >= 0, got {cov}")));
    }
    if !(rel_error > 0.0 && rel_error < 1.0) {
        return Err(invalid(
            "rel_error",
            format!("must be in (0, 1), got {rel_error}"),
        ));
    }
    crate::ci::check_confidence(confidence)?;
    let alpha = 1.0 - confidence;
    let raw = cov * cov / (alpha * rel_error * rel_error);
    Ok(ParametricEstimate {
        repetitions: raw.ceil().max(1.0) as usize,
        raw,
        cov,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        // cov = 0.05, rel_error = 0.01, z = 1.96 -> n = (1.96*0.05/0.01)^2 = 96.04.
        let est = jain_sample_size_from_cov(0.05, 0.01, 0.95).unwrap();
        assert!((est.raw - 96.04).abs() < 0.05, "raw={}", est.raw);
        assert_eq!(est.repetitions, 97);
    }

    #[test]
    fn pilot_and_cov_paths_agree() {
        let pilot: Vec<f64> = (0..100)
            .map(|i| 100.0 + ((i * 31) % 17) as f64 - 8.0)
            .collect();
        let a = jain_sample_size(&pilot, 0.02, 0.95).unwrap();
        let b = jain_sample_size_from_cov(a.cov, 0.02, 0.95).unwrap();
        assert_eq!(a.repetitions, b.repetitions);
        assert!((a.raw - b.raw).abs() < 1e-9);
    }

    #[test]
    fn tighter_error_needs_quadratically_more() {
        let c1 = jain_sample_size_from_cov(0.1, 0.02, 0.95).unwrap();
        let c2 = jain_sample_size_from_cov(0.1, 0.01, 0.95).unwrap();
        assert!((c2.raw / c1.raw - 4.0).abs() < 1e-9);
    }

    #[test]
    fn higher_confidence_needs_more() {
        let c95 = jain_sample_size_from_cov(0.1, 0.01, 0.95).unwrap();
        let c99 = jain_sample_size_from_cov(0.1, 0.01, 0.99).unwrap();
        assert!(c99.repetitions > c95.repetitions);
    }

    #[test]
    fn zero_cov_needs_one_repetition() {
        let est = jain_sample_size_from_cov(0.0, 0.01, 0.95).unwrap();
        assert_eq!(est.repetitions, 1);
    }

    #[test]
    fn chebyshev_dominates_jain() {
        for &cov in &[0.01, 0.05, 0.2] {
            let j = jain_sample_size_from_cov(cov, 0.01, 0.95).unwrap();
            let c = chebyshev_sample_size(cov, 0.01, 0.95).unwrap();
            assert!(c.repetitions >= j.repetitions, "cov={cov}");
        }
    }

    #[test]
    fn validation() {
        assert!(jain_sample_size(&[1.0], 0.01, 0.95).is_err());
        assert!(jain_sample_size(&[1.0, 2.0], 0.0, 0.95).is_err());
        assert!(jain_sample_size(&[1.0, 2.0], 1.5, 0.95).is_err());
        assert!(jain_sample_size(&[1.0, 2.0], 0.01, 1.0).is_err());
        assert!(jain_sample_size(&[-1.0, 1.0], 0.01, 0.95).is_err());
        assert!(jain_sample_size_from_cov(-0.1, 0.01, 0.95).is_err());
        assert!(jain_sample_size_from_cov(f64::NAN, 0.01, 0.95).is_err());
    }
}
