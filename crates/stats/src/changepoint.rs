//! Changepoint detection for measurement time series.
//!
//! The paper observes that long-running testbeds drift: OS upgrades,
//! firmware changes and hardware degradation shift performance levels over
//! months. Treating such a series as one i.i.d. sample poisons every
//! downstream statistic, so campaigns must be segmented first. Provided:
//! a CUSUM single-change detector with permutation significance, greedy
//! binary segmentation, and the exact PELT dynamic program (Killick et
//! al.) with an SSE (mean-shift) cost.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{check_finite, invalid, Result, StatsError};

/// Prefix sums used by the SSE segment cost.
struct Prefix {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl Prefix {
    fn new(data: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(data.len() + 1);
        let mut sum_sq = Vec::with_capacity(data.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        for &x in data {
            sum.push(sum.last().unwrap() + x);
            sum_sq.push(sum_sq.last().unwrap() + x * x);
        }
        Self { sum, sum_sq }
    }

    /// SSE of the segment `[s, e)` around its own mean.
    fn cost(&self, s: usize, e: usize) -> f64 {
        debug_assert!(s < e);
        let n = (e - s) as f64;
        let total = self.sum[e] - self.sum[s];
        let total_sq = self.sum_sq[e] - self.sum_sq[s];
        (total_sq - total * total / n).max(0.0)
    }
}

/// Robust noise-scale estimate from lag-1 differences
/// (`MAD(diff) / sqrt(2)`, scaled for normal consistency).
///
/// Level shifts barely move this estimator, which is exactly why it is the
/// right normalizer for changepoint penalties. Quantized or strongly
/// patterned measurements (e.g. microsecond-resolution timers) can tie so
/// heavily that the MAD collapses to zero even though the series varies;
/// the estimator then falls back to the IQR of the differences, and
/// finally to their standard deviation.
///
/// # Errors
///
/// Returns an error with fewer than 3 samples or invalid input.
pub fn robust_noise_sigma(data: &[f64]) -> Result<f64> {
    check_finite(data)?;
    if data.len() < 3 {
        return Err(StatsError::TooFewSamples {
            needed: 3,
            got: data.len(),
        });
    }
    let diffs: Vec<f64> = data.windows(2).map(|w| w[1] - w[0]).collect();
    let mad = crate::descriptive::mad(&diffs)?;
    if mad > 0.0 {
        return Ok(mad / std::f64::consts::SQRT_2);
    }
    // Fallback 1: IQR of the differences (normal-consistent scale 1.349).
    let q1 = crate::quantile::quantile(&diffs, 0.25, crate::quantile::QuantileMethod::Linear)?;
    let q3 = crate::quantile::quantile(&diffs, 0.75, crate::quantile::QuantileMethod::Linear)?;
    let iqr = q3 - q1;
    if iqr > 0.0 {
        return Ok(iqr / 1.349 / std::f64::consts::SQRT_2);
    }
    // Fallback 2: standard deviation (level shifts will inflate it, but a
    // too-large penalty only makes detection conservative).
    Ok(crate::descriptive::std_dev(&diffs)? / std::f64::consts::SQRT_2)
}

/// Exact multiple-changepoint detection via PELT with an SSE cost.
///
/// Returns the sorted changepoint positions: index `i` means a new segment
/// starts at `data[i]`. `penalty` is the cost a new changepoint must
/// amortize; `None` selects `3 * sigma^2 * ln n` with the robust noise
/// estimate — slightly stricter than BIC, which resists heavy-tailed noise.
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 6 samples, or a
/// non-positive explicit penalty.
///
/// # Examples
///
/// ```
/// use varstats::changepoint::pelt_mean;
///
/// let mut series = vec![10.0; 50];
/// series.extend(vec![14.0; 50]);
/// let cps = pelt_mean(&series, None).unwrap();
/// assert_eq!(cps, vec![50]);
/// ```
pub fn pelt_mean(data: &[f64], penalty: Option<f64>) -> Result<Vec<usize>> {
    check_finite(data)?;
    let n = data.len();
    if n < 6 {
        return Err(StatsError::TooFewSamples { needed: 6, got: n });
    }
    let beta = match penalty {
        Some(b) if b > 0.0 => b,
        Some(b) => {
            return Err(invalid("penalty", format!("must be > 0, got {b}")));
        }
        None => {
            let sigma = robust_noise_sigma(data)?;
            let sigma2 = (sigma * sigma).max(1e-12);
            3.0 * sigma2 * (n as f64).ln()
        }
    };
    let prefix = Prefix::new(data);
    // f[t] = optimal cost of data[0..t] (t points), with last-changepoint
    // backpointers in prev[t].
    let mut f = vec![f64::INFINITY; n + 1];
    let mut prev = vec![0usize; n + 1];
    f[0] = -beta;
    let mut candidates: Vec<usize> = vec![0];
    for t in 1..=n {
        let mut best = f64::INFINITY;
        let mut best_s = 0;
        for &s in &candidates {
            let c = f[s] + prefix.cost(s, t) + beta;
            if c < best {
                best = c;
                best_s = s;
            }
        }
        f[t] = best;
        prev[t] = best_s;
        // PELT pruning: drop candidates that can never win again.
        candidates.retain(|&s| f[s] + prefix.cost(s, t) <= f[t]);
        candidates.push(t);
    }
    // Backtrack.
    let mut cps = Vec::new();
    let mut t = n;
    while t > 0 {
        let s = prev[t];
        if s > 0 {
            cps.push(s);
        }
        t = s;
    }
    cps.reverse();
    // Post-pass: an isolated outlier can be "explained" by two adjacent
    // changepoints bracketing a one-point segment. Merge segments shorter
    // than MIN_SEGMENT — removing the *weaker* of the segment's two
    // boundary changepoints, so a genuine shift next to a glitch survives
    // — then drop any changepoint whose SSE gain no longer amortizes the
    // penalty.
    const MIN_SEGMENT: usize = 3;
    let gain_of = |boundaries: &[usize], i: usize| -> f64 {
        let (left, mid, right) = (boundaries[i - 1], boundaries[i], boundaries[i + 1]);
        prefix.cost(left, right) - prefix.cost(left, mid) - prefix.cost(mid, right)
    };
    loop {
        let mut boundaries = Vec::with_capacity(cps.len() + 2);
        boundaries.push(0);
        boundaries.extend(cps.iter().copied());
        boundaries.push(n);
        let mut to_remove = None;
        // 1) Merge the first short segment by dropping its weaker boundary.
        'segments: for i in 0..boundaries.len() - 1 {
            if boundaries[i + 1] - boundaries[i] < MIN_SEGMENT {
                let left_cp = (i > 0).then_some(i);
                let right_cp = (i + 1 < boundaries.len() - 1).then_some(i + 1);
                let weaker = match (left_cp, right_cp) {
                    (Some(l), Some(r)) => {
                        if gain_of(&boundaries, l) <= gain_of(&boundaries, r) {
                            l
                        } else {
                            r
                        }
                    }
                    (Some(l), None) => l,
                    (None, Some(r)) => r,
                    (None, None) => break 'segments,
                };
                to_remove = Some(boundaries[weaker]);
                break 'segments;
            }
        }
        // 2) Otherwise drop the weakest changepoint below the penalty.
        if to_remove.is_none() {
            for i in 1..boundaries.len() - 1 {
                if gain_of(&boundaries, i) < beta {
                    to_remove = Some(boundaries[i]);
                    break;
                }
            }
        }
        match to_remove {
            Some(cp) => cps.retain(|&c| c != cp),
            None => break,
        }
    }
    Ok(cps)
}

/// Greedy binary segmentation with the same SSE cost and penalty semantics
/// as [`pelt_mean`]. Faster but only approximate; kept as the ablation
/// baseline.
///
/// # Errors
///
/// Same as [`pelt_mean`].
pub fn binary_segmentation(
    data: &[f64],
    penalty: Option<f64>,
    max_changepoints: usize,
) -> Result<Vec<usize>> {
    check_finite(data)?;
    let n = data.len();
    if n < 6 {
        return Err(StatsError::TooFewSamples { needed: 6, got: n });
    }
    let beta = match penalty {
        Some(b) if b > 0.0 => b,
        Some(b) => {
            return Err(invalid("penalty", format!("must be > 0, got {b}")));
        }
        None => {
            let sigma = robust_noise_sigma(data)?;
            3.0 * (sigma * sigma).max(1e-12) * (n as f64).ln()
        }
    };
    let prefix = Prefix::new(data);
    let mut cps: Vec<usize> = Vec::new();
    let mut segments: Vec<(usize, usize)> = vec![(0, n)];
    while cps.len() < max_changepoints {
        let mut best_gain = 0.0;
        let mut best_split = None;
        for &(s, e) in &segments {
            if e - s < 4 {
                continue;
            }
            let whole = prefix.cost(s, e);
            for k in s + 2..e - 1 {
                let gain = whole - prefix.cost(s, k) - prefix.cost(k, e);
                if gain > best_gain {
                    best_gain = gain;
                    best_split = Some((s, k, e));
                }
            }
        }
        match best_split {
            Some((s, k, e)) if best_gain > beta => {
                cps.push(k);
                segments.retain(|&seg| seg != (s, e));
                segments.push((s, k));
                segments.push((k, e));
            }
            _ => break,
        }
    }
    cps.sort_unstable();
    Ok(cps)
}

/// Result of the CUSUM single-change detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CusumResult {
    /// Most likely change position (a new segment starts at this index).
    pub changepoint: usize,
    /// The CUSUM range statistic of the observed series.
    pub statistic: f64,
    /// Permutation p-value: fraction of shuffles with at least as large a
    /// range.
    pub p_value: f64,
    /// Mean before the changepoint.
    pub mean_before: f64,
    /// Mean after the changepoint.
    pub mean_after: f64,
}

impl CusumResult {
    /// Whether a level shift is significant at `alpha`.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// CUSUM single-changepoint detector with permutation significance.
///
/// Computes the cumulative sum of deviations from the mean; the position of
/// the extreme excursion is the changepoint candidate, and the range of the
/// CUSUM path is compared against `resamples` random shuffles of the data.
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 10 samples, or fewer than
/// 50 resamples.
pub fn cusum_detect(data: &[f64], resamples: usize, seed: u64) -> Result<CusumResult> {
    check_finite(data)?;
    let n = data.len();
    if n < 10 {
        return Err(StatsError::TooFewSamples { needed: 10, got: n });
    }
    if resamples < 50 {
        return Err(invalid(
            "resamples",
            format!("need at least 50 permutations, got {resamples}"),
        ));
    }
    let (range, argmax) = cusum_range(data);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled = data.to_vec();
    let mut exceed = 0usize;
    for _ in 0..resamples {
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        let (r, _) = cusum_range(&shuffled);
        if r >= range {
            exceed += 1;
        }
    }
    let p_value = (exceed as f64 + 1.0) / (resamples as f64 + 1.0);
    let cp = argmax;
    let mean_before = data[..cp].iter().sum::<f64>() / cp as f64;
    let mean_after = data[cp..].iter().sum::<f64>() / (n - cp) as f64;
    Ok(CusumResult {
        changepoint: cp,
        statistic: range,
        p_value,
        mean_before,
        mean_after,
    })
}

/// Returns the CUSUM range and the 1-based index of the extreme excursion
/// (which is where the new segment starts).
fn cusum_range(data: &[f64]) -> (f64, usize) {
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let mut s = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut arg = 1usize;
    let mut extreme = 0.0f64;
    for (i, &x) in data.iter().enumerate() {
        s += x - mean;
        if s < min {
            min = s;
        }
        if s > max {
            max = s;
        }
        if s.abs() > extreme {
            extreme = s.abs();
            arg = i + 1;
        }
    }
    (max - min, arg.min(n - 1).max(1))
}

/// Splits `data` into segments at the given changepoints.
///
/// # Errors
///
/// Returns an error if any changepoint is out of range or unsorted.
pub fn split_segments<'a>(data: &'a [f64], changepoints: &[usize]) -> Result<Vec<&'a [f64]>> {
    let mut out = Vec::with_capacity(changepoints.len() + 1);
    let mut start = 0usize;
    for &cp in changepoints {
        if cp <= start || cp >= data.len() {
            return Err(invalid(
                "changepoints",
                format!("changepoint {cp} out of order or out of range"),
            ));
        }
        out.push(&data[start..cp]);
        start = cp;
    }
    out.push(&data[start..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_steps(levels: &[(f64, usize)], seed: u64, noise: f64) -> Vec<f64> {
        let mut state = seed;
        let mut uniform = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut out = Vec::new();
        for &(level, len) in levels {
            for _ in 0..len {
                out.push(level + noise * (uniform() - 0.5));
            }
        }
        out
    }

    #[test]
    fn pelt_finds_single_clean_shift() {
        let data = noisy_steps(&[(10.0, 60), (13.0, 60)], 1, 0.5);
        let cps = pelt_mean(&data, None).unwrap();
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert!((cps[0] as i64 - 60).unsigned_abs() <= 2, "{cps:?}");
    }

    #[test]
    fn pelt_finds_multiple_shifts() {
        let data = noisy_steps(&[(10.0, 50), (20.0, 50), (5.0, 50)], 2, 0.8);
        let cps = pelt_mean(&data, None).unwrap();
        assert_eq!(cps.len(), 2, "{cps:?}");
        assert!((cps[0] as i64 - 50).unsigned_abs() <= 2);
        assert!((cps[1] as i64 - 100).unsigned_abs() <= 2);
    }

    #[test]
    fn pelt_reports_nothing_on_stationary_noise() {
        let data = noisy_steps(&[(10.0, 200)], 3, 1.0);
        let cps = pelt_mean(&data, None).unwrap();
        assert!(cps.is_empty(), "{cps:?}");
    }

    #[test]
    fn pelt_penalty_controls_sensitivity() {
        let data = noisy_steps(&[(10.0, 50), (10.6, 50)], 4, 0.5);
        let loose = pelt_mean(&data, Some(0.5)).unwrap();
        let strict = pelt_mean(&data, Some(1e6)).unwrap();
        assert!(loose.len() >= strict.len());
        assert!(strict.is_empty());
    }

    #[test]
    fn binseg_agrees_with_pelt_on_clean_data() {
        let data = noisy_steps(&[(5.0, 40), (9.0, 40)], 5, 0.3);
        let p = pelt_mean(&data, None).unwrap();
        let b = binary_segmentation(&data, None, 5).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(b.len(), 1);
        assert!((p[0] as i64 - b[0] as i64).abs() <= 1);
    }

    #[test]
    fn cusum_detects_shift_and_reports_means() {
        let data = noisy_steps(&[(100.0, 80), (110.0, 80)], 6, 2.0);
        let r = cusum_detect(&data, 200, 9).unwrap();
        assert!(r.is_significant(0.05), "p={}", r.p_value);
        assert!(
            (r.changepoint as i64 - 80).unsigned_abs() <= 4,
            "{}",
            r.changepoint
        );
        assert!((r.mean_before - 100.0).abs() < 1.0);
        assert!((r.mean_after - 110.0).abs() < 1.0);
    }

    #[test]
    fn cusum_not_significant_on_noise() {
        let data = noisy_steps(&[(100.0, 150)], 7, 2.0);
        let r = cusum_detect(&data, 200, 10).unwrap();
        assert!(!r.is_significant(0.01), "p={}", r.p_value);
    }

    #[test]
    fn robust_sigma_survives_quantized_data() {
        // A modular sawtooth ties the diffs so heavily that the MAD is 0;
        // the IQR fallback must keep the scale positive, and PELT must
        // still find a genuine level shift on top of the pattern.
        let mut series: Vec<f64> = (0..80)
            .map(|i| 100.0 + (i * 37 % 11) as f64 * 0.05)
            .collect();
        series.extend((0..120).map(|i| 110.0 + (i * 37 % 11) as f64 * 0.05));
        let sigma = robust_noise_sigma(&series).unwrap();
        assert!(sigma > 0.0, "fallback failed: {sigma}");
        let cps = pelt_mean(&series, None).unwrap();
        assert_eq!(cps, vec![80], "{cps:?}");
    }

    #[test]
    fn robust_sigma_constant_series_is_zero() {
        let series = vec![5.0; 50];
        assert_eq!(robust_noise_sigma(&series).unwrap(), 0.0);
    }

    #[test]
    fn robust_sigma_ignores_level_shifts() {
        let clean = noisy_steps(&[(10.0, 100)], 8, 1.0);
        let shifted = noisy_steps(&[(10.0, 50), (50.0, 50)], 8, 1.0);
        let s1 = robust_noise_sigma(&clean).unwrap();
        let s2 = robust_noise_sigma(&shifted).unwrap();
        // The huge level shift contributes a single large diff, which MAD
        // ignores.
        assert!((s2 / s1) < 2.0, "s1={s1} s2={s2}");
    }

    #[test]
    fn split_segments_partitions_data() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let segs = split_segments(&data, &[3, 7]).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], &[0.0, 1.0, 2.0]);
        assert_eq!(segs[1], &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(segs[2], &[7.0, 8.0, 9.0]);
        assert!(split_segments(&data, &[0]).is_err());
        assert!(split_segments(&data, &[10]).is_err());
        assert!(split_segments(&data, &[5, 3]).is_err());
    }

    #[test]
    fn validation() {
        assert!(pelt_mean(&[1.0, 2.0], None).is_err());
        assert!(pelt_mean(&noisy_steps(&[(1.0, 20)], 1, 0.1), Some(-1.0)).is_err());
        assert!(cusum_detect(&[1.0; 5], 100, 0).is_err());
        assert!(cusum_detect(&noisy_steps(&[(1.0, 20)], 1, 0.1), 10, 0).is_err());
    }
}
