//! Quantile–quantile analytics.
//!
//! QQ plots are the visual argument for non-normality that the
//! measurement-variability literature leans on. This module produces the
//! plot data (sample quantiles against theoretical normal scores or
//! against a second sample) plus the Filliben-style probability-plot
//! correlation coefficient — a single number summarizing "how straight is
//! the QQ line".

use serde::{Deserialize, Serialize};

use crate::descriptive::Moments;
use crate::error::{check_finite, Result, StatsError};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::special::normal_quantile;

/// QQ data against the normal distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalQq {
    /// `(theoretical normal score, observed order statistic)` pairs.
    pub points: Vec<(f64, f64)>,
    /// Correlation between scores and order statistics (Filliben's
    /// statistic): 1.0 = perfectly normal.
    pub correlation: f64,
    /// Intercept of the least-squares QQ line (estimates the mean).
    pub intercept: f64,
    /// Slope of the least-squares QQ line (estimates the SD).
    pub slope: f64,
}

/// Builds normal QQ data using Filliben's plotting positions
/// `(i - 0.375) / (n + 0.25)`.
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 5 samples, or zero
/// variance.
///
/// # Examples
///
/// ```
/// use varstats::qq::normal_qq;
///
/// let data: Vec<f64> = (1..=40)
///     .map(|i| varstats::special::normal_quantile((i as f64 - 0.5) / 40.0).unwrap())
///     .collect();
/// let qq = normal_qq(&data).unwrap();
/// assert!(qq.correlation > 0.999);
/// ```
pub fn normal_qq(data: &[f64]) -> Result<NormalQq> {
    check_finite(data)?;
    let n = data.len();
    if n < 5 {
        return Err(StatsError::TooFewSamples { needed: 5, got: n });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    if sorted[0] == sorted[n - 1] {
        return Err(StatsError::ZeroVariance);
    }
    let nf = n as f64;
    let mut points = Vec::with_capacity(n);
    for (i, &x) in sorted.iter().enumerate() {
        let p = ((i + 1) as f64 - 0.375) / (nf + 0.25);
        points.push((normal_quantile(p)?, x));
    }
    // Least-squares line and Pearson correlation of the pairs.
    let mx: Moments = points.iter().map(|(t, _)| *t).collect();
    let my: Moments = points.iter().map(|(_, x)| *x).collect();
    let mut cov = 0.0;
    for (t, x) in &points {
        cov += (t - mx.mean()) * (x - my.mean());
    }
    cov /= nf - 1.0;
    let sx = mx.std_dev();
    let sy = my.std_dev();
    if sx == 0.0 || sy == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let correlation = cov / (sx * sy);
    let slope = cov / (sx * sx);
    let intercept = my.mean() - slope * mx.mean();
    Ok(NormalQq {
        points,
        correlation,
        intercept,
        slope,
    })
}

/// Two-sample QQ data: quantiles of `a` against quantiles of `b` at
/// `points` evenly spaced probabilities.
///
/// Near-identical distributions trace the diagonal; divergence in the
/// upper corner is the tail signature the paper's latency exhibits show.
///
/// # Errors
///
/// Returns an error on invalid inputs or `points < 2`.
pub fn two_sample_qq(a: &[f64], b: &[f64], points: usize) -> Result<Vec<(f64, f64)>> {
    check_finite(a)?;
    check_finite(b)?;
    if points < 2 {
        return Err(crate::error::invalid("points", "need at least 2"));
    }
    let mut sa = a.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let mut sb = b.to_vec();
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    (0..points)
        .map(|i| {
            let q = (i as f64 + 0.5) / points as f64;
            Ok((
                quantile_sorted(&sa, q, QuantileMethod::Linear)?,
                quantile_sorted(&sb, q, QuantileMethod::Linear)?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn normal_data_traces_a_straight_line() {
        let mut u = splitmix(1);
        let data: Vec<f64> = (0..200)
            .map(|_| {
                let u1: f64 = u().max(1e-12);
                let u2: f64 = u();
                50.0 + 3.0 * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let qq = normal_qq(&data).unwrap();
        assert!(qq.correlation > 0.99, "r = {}", qq.correlation);
        assert!(
            (qq.intercept - 50.0).abs() < 1.0,
            "intercept {}",
            qq.intercept
        );
        assert!((qq.slope - 3.0).abs() < 0.5, "slope {}", qq.slope);
    }

    #[test]
    fn exponential_data_bends_the_line() {
        let mut u = splitmix(2);
        let data: Vec<f64> = (0..200).map(|_| -u().max(1e-12).ln()).collect();
        let qq = normal_qq(&data).unwrap();
        assert!(qq.correlation < 0.985, "r = {}", qq.correlation);
        // The points must be monotone in both coordinates.
        for w in qq.points.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn filliben_r_separates_normal_from_heavy_tail() {
        let mut u = splitmix(3);
        let normal: Vec<f64> = (0..150)
            .map(|_| {
                let u1: f64 = u().max(1e-12);
                let u2: f64 = u();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let heavy: Vec<f64> = (0..150).map(|_| u().max(1e-9).powf(-0.5)).collect();
        let rn = normal_qq(&normal).unwrap().correlation;
        let rh = normal_qq(&heavy).unwrap().correlation;
        assert!(rn > rh + 0.02, "normal {rn} vs heavy {rh}");
    }

    #[test]
    fn two_sample_qq_identical_is_diagonal() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let pts = two_sample_qq(&data, &data, 20).unwrap();
        for (x, y) in pts {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn two_sample_qq_shows_tail_divergence() {
        let mut u = splitmix(4);
        let base: Vec<f64> = (0..500).map(|_| u()).collect();
        let tailed: Vec<f64> = (0..500)
            .map(|_| {
                let v = u();
                if v > 0.97 {
                    v * 10.0
                } else {
                    v
                }
            })
            .collect();
        let pts = two_sample_qq(&base, &tailed, 50).unwrap();
        let (first_x, first_y) = pts[0];
        let (last_x, last_y) = *pts.last().unwrap();
        assert!((first_y / first_x.max(1e-9) - 1.0).abs() < 0.5);
        assert!(
            last_y / last_x > 2.0,
            "tail should diverge: {last_x} vs {last_y}"
        );
    }

    #[test]
    fn validation() {
        assert!(normal_qq(&[1.0, 2.0]).is_err());
        assert!(normal_qq(&[3.0; 10]).is_err());
        assert!(two_sample_qq(&[1.0], &[], 10).is_err());
        assert!(two_sample_qq(&[1.0, 2.0], &[1.0, 2.0], 1).is_err());
    }
}
