//! Descriptive statistics: one-pass moments and robust summaries.

use crate::error::{check_finite, Result, StatsError};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::samples::Samples;
use serde::{Deserialize, Serialize};

/// Streaming (one-pass) accumulator for the first four central moments,
/// using Welford's numerically stable recurrences.
///
/// # Examples
///
/// ```
/// use varstats::descriptive::Moments;
///
/// let mut m = Moments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.update(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the accumulator.
    pub fn update(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.mean += delta_n;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.mean = (na * self.mean + nb * other.mean) / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (`n - 1` denominator).
    ///
    /// Returns 0 when fewer than two observations have been seen.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population variance (`n` denominator).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation `s / |mean|`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroVariance`] when the mean is zero (CoV is
    /// undefined there).
    pub fn cov(&self) -> Result<f64> {
        if self.mean == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        Ok(self.std_dev() / self.mean.abs())
    }

    /// Sample skewness `g1 = sqrt(n) m3 / m2^(3/2)`.
    ///
    /// Returns 0 for degenerate (constant) data.
    pub fn skewness(&self) -> f64 {
        if self.n < 2 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n.sqrt() * self.m3 / self.m2.powf(1.5)
    }

    /// Excess kurtosis `g2 = n m4 / m2^2 - 3`.
    ///
    /// Returns 0 for degenerate (constant) data.
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n < 2 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = Moments::new();
        for x in iter {
            m.update(x);
        }
        m
    }
}

/// Mean of a slice.
///
/// # Errors
///
/// Returns an error on empty or non-finite input.
pub fn mean(data: &[f64]) -> Result<f64> {
    check_finite(data)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample standard deviation of a slice.
///
/// # Errors
///
/// Returns an error on empty or non-finite input.
pub fn std_dev(data: &[f64]) -> Result<f64> {
    check_finite(data)?;
    Ok(data.iter().copied().collect::<Moments>().std_dev())
}

/// Coefficient of variation of a slice (`s / |mean|`).
///
/// # Errors
///
/// Returns an error on empty/non-finite input or a zero mean.
pub fn coefficient_of_variation(data: &[f64]) -> Result<f64> {
    check_finite(data)?;
    data.iter().copied().collect::<Moments>().cov()
}

/// Median absolute deviation (scaled by 1.4826 for normal consistency).
///
/// # Errors
///
/// Returns an error on empty or non-finite input.
pub fn mad(data: &[f64]) -> Result<f64> {
    check_finite(data)?;
    let med = crate::quantile::median(data)?;
    let deviations: Vec<f64> = data.iter().map(|x| (x - med).abs()).collect();
    Ok(1.482_602_218_505_602 * crate::quantile::median(&deviations)?)
}

/// Full descriptive summary of a sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / |mean|`; 0 when mean is 0).
    pub cov: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (type 7).
    pub q1: f64,
    /// Median (type 7).
    pub median: f64,
    /// Third quartile (type 7).
    pub q3: f64,
    /// 95th percentile (type 7).
    pub p95: f64,
    /// 99th percentile (type 7).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Scaled median absolute deviation.
    pub mad: f64,
    /// Sample skewness.
    pub skewness: f64,
    /// Excess kurtosis.
    pub excess_kurtosis: f64,
}

impl Summary {
    /// Computes the summary of a validated sample set.
    pub fn from_samples(samples: &Samples) -> Self {
        let sorted = samples.sorted();
        let moments: Moments = samples.data().iter().copied().collect();
        let q =
            |p: f64| quantile_sorted(sorted, p, QuantileMethod::Linear).expect("validated samples");
        let median = q(0.5);
        let deviations: Vec<f64> = samples.data().iter().map(|x| (x - median).abs()).collect();
        let mad_raw = crate::quantile::median(&deviations).expect("non-empty");
        Summary {
            n: samples.len(),
            mean: moments.mean(),
            std_dev: moments.std_dev(),
            cov: moments.cov().unwrap_or(0.0),
            min: samples.min(),
            q1: q(0.25),
            median,
            q3: q(0.75),
            p95: q(0.95),
            p99: q(0.99),
            max: samples.max(),
            mad: 1.482_602_218_505_602 * mad_raw,
            skewness: moments.skewness(),
            excess_kurtosis: moments.excess_kurtosis(),
        }
    }

    /// Computes the summary directly from a slice.
    ///
    /// # Errors
    ///
    /// Returns an error on empty or non-finite input.
    pub fn from_slice(data: &[f64]) -> Result<Self> {
        Ok(Self::from_samples(&Samples::from_slice(data)?))
    }

    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Relative mean-median gap `(mean - median) / median` — a quick skew
    /// indicator the paper uses to argue for medians.
    pub fn mean_median_gap(&self) -> f64 {
        if self.median == 0.0 {
            0.0
        } else {
            (self.mean - self.median) / self.median
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "n       {:>14}", self.n)?;
        writeln!(f, "mean    {:>14.4}", self.mean)?;
        writeln!(f, "std dev {:>14.4}", self.std_dev)?;
        writeln!(f, "CoV     {:>13.2}%", self.cov * 100.0)?;
        writeln!(f, "min     {:>14.4}", self.min)?;
        writeln!(f, "q1      {:>14.4}", self.q1)?;
        writeln!(f, "median  {:>14.4}", self.median)?;
        writeln!(f, "q3      {:>14.4}", self.q3)?;
        writeln!(f, "p95     {:>14.4}", self.p95)?;
        writeln!(f, "p99     {:>14.4}", self.p99)?;
        writeln!(f, "max     {:>14.4}", self.max)?;
        writeln!(f, "MAD     {:>14.4}", self.mad)?;
        write!(f, "skew    {:>14.4}", self.skewness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn moments_known_dataset() {
        // Data 2,4,4,4,5,5,7,9: mean 5, population variance 4.
        let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        close(m.mean(), 5.0, 1e-12);
        close(m.population_variance(), 4.0, 1e-12);
        close(m.sample_variance(), 32.0 / 7.0, 1e-12);
        close(m.min(), 2.0, 0.0);
        close(m.max(), 9.0, 0.0);
    }

    #[test]
    fn moments_match_two_pass_formulas() {
        let data: Vec<f64> = (0..500)
            .map(|i| ((i * 2654435761u64 as usize) % 997) as f64 / 99.0)
            .collect();
        let m: Moments = data.iter().copied().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let m2: f64 = data.iter().map(|x| (x - mean).powi(2)).sum();
        let m3: f64 = data.iter().map(|x| (x - mean).powi(3)).sum();
        let m4: f64 = data.iter().map(|x| (x - mean).powi(4)).sum();
        close(m.mean(), mean, 1e-9);
        close(m.sample_variance(), m2 / (n - 1.0), 1e-8);
        close(m.skewness(), n.sqrt() * m3 / m2.powf(1.5), 1e-8);
        close(m.excess_kurtosis(), n * m4 / (m2 * m2) - 3.0, 1e-8);
    }

    #[test]
    fn moments_merge_equals_sequential() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let (a, b) = data.split_at(73);
        let mut ma: Moments = a.iter().copied().collect();
        let mb: Moments = b.iter().copied().collect();
        ma.merge(&mb);
        let full: Moments = data.iter().copied().collect();
        close(ma.mean(), full.mean(), 1e-10);
        close(ma.sample_variance(), full.sample_variance(), 1e-9);
        close(ma.skewness(), full.skewness(), 1e-8);
        close(ma.excess_kurtosis(), full.excess_kurtosis(), 1e-8);
        assert_eq!(ma.count(), full.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: Moments = [1.0, 2.0, 3.0].iter().copied().collect();
        let before = m;
        m.merge(&Moments::new());
        close(m.mean(), before.mean(), 0.0);
        let mut e = Moments::new();
        e.merge(&before);
        close(e.mean(), before.mean(), 0.0);
        assert_eq!(e.count(), 3);
    }

    #[test]
    fn skewness_sign_matches_shape() {
        // Right-skewed data has positive skewness.
        let right: Moments = [1.0, 1.0, 1.0, 1.0, 10.0].iter().copied().collect();
        assert!(right.skewness() > 0.0);
        let left: Moments = [10.0, 10.0, 10.0, 10.0, 1.0].iter().copied().collect();
        assert!(left.skewness() < 0.0);
        let sym: Moments = [1.0, 2.0, 3.0, 4.0, 5.0].iter().copied().collect();
        close(sym.skewness(), 0.0, 1e-12);
    }

    #[test]
    fn constant_data_is_degenerate() {
        let m: Moments = [5.0; 10].iter().copied().collect();
        close(m.std_dev(), 0.0, 1e-15);
        close(m.skewness(), 0.0, 0.0);
        close(m.excess_kurtosis(), 0.0, 0.0);
    }

    #[test]
    fn cov_requires_nonzero_mean() {
        let m: Moments = [-1.0, 1.0].iter().copied().collect();
        assert_eq!(m.cov(), Err(StatsError::ZeroVariance));
        let m: Moments = [10.0, 12.0].iter().copied().collect();
        assert!(m.cov().unwrap() > 0.0);
    }

    #[test]
    fn mad_is_robust_to_outliers() {
        let clean = [10.0, 10.1, 9.9, 10.2, 9.8, 10.0, 10.1];
        let mut dirty = clean.to_vec();
        dirty.push(1000.0);
        let mad_clean = mad(&clean).unwrap();
        let mad_dirty = mad(&dirty).unwrap();
        // MAD barely moves; standard deviation explodes.
        assert!(mad_dirty < 3.0 * mad_clean);
        assert!(std_dev(&dirty).unwrap() > 100.0 * std_dev(&clean).unwrap());
    }

    #[test]
    fn summary_fields_are_consistent() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_slice(&data).unwrap();
        assert_eq!(s.n, 100);
        close(s.mean, 50.5, 1e-12);
        close(s.median, 50.5, 1e-12);
        close(s.min, 1.0, 0.0);
        close(s.max, 100.0, 0.0);
        assert!(s.q1 < s.median && s.median < s.q3);
        assert!(s.p95 <= s.p99 && s.p99 <= s.max);
        close(s.iqr(), s.q3 - s.q1, 1e-12);
        close(s.mean_median_gap(), 0.0, 1e-12);
    }

    #[test]
    fn summary_flags_skew_via_mean_median_gap() {
        let mut data = vec![10.0; 99];
        data.push(1000.0);
        let s = Summary::from_slice(&data).unwrap();
        assert!(s.mean_median_gap() > 0.5, "gap {}", s.mean_median_gap());
        assert!(s.skewness > 5.0);
    }

    #[test]
    fn summary_display_renders_all_rows() {
        let data: Vec<f64> = (1..=50).map(f64::from).collect();
        let text = Summary::from_slice(&data).unwrap().to_string();
        for key in ["mean", "median", "p99", "MAD", "skew", "CoV"] {
            assert!(text.contains(key), "missing {key}: {text}");
        }
        assert_eq!(text.lines().count(), 13);
    }

    #[test]
    fn slice_helpers_validate() {
        assert!(mean(&[]).is_err());
        assert!(std_dev(&[f64::NAN]).is_err());
        assert!(coefficient_of_variation(&[1.0, -1.0]).is_err());
        close(mean(&[1.0, 3.0]).unwrap(), 2.0, 1e-15);
    }
}
