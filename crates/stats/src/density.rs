//! Kernel density estimation and modality detection.
//!
//! The paper's multimodality exhibits (same-type machines clustering into
//! distinct performance modes) need a smoother detector than histogram
//! bin-counting. A Gaussian KDE with Silverman's bandwidth gives a
//! continuous density whose local maxima are the modes.

use serde::{Deserialize, Serialize};

use crate::descriptive::Moments;
use crate::error::{check_finite, invalid, Result, StatsError};
use crate::quantile::{quantile, QuantileMethod};

/// A Gaussian kernel density estimate over a sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth
    /// `0.9 * min(sd, IQR/1.34) * n^(-1/5)`.
    ///
    /// # Errors
    ///
    /// Returns an error on empty/non-finite input, fewer than 3 samples,
    /// or zero spread (all samples identical).
    pub fn new(data: &[f64]) -> Result<Self> {
        check_finite(data)?;
        if data.len() < 3 {
            return Err(StatsError::TooFewSamples {
                needed: 3,
                got: data.len(),
            });
        }
        let m: Moments = data.iter().copied().collect();
        let sd = m.std_dev();
        let iqr = quantile(data, 0.75, QuantileMethod::Linear)?
            - quantile(data, 0.25, QuantileMethod::Linear)?;
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        if spread <= 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        let bandwidth = 0.9 * spread * (data.len() as f64).powf(-0.2);
        Ok(Self {
            data: data.to_vec(),
            bandwidth,
        })
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid data or non-positive bandwidth.
    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Result<Self> {
        check_finite(data)?;
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            return Err(invalid(
                "bandwidth",
                format!("must be > 0, got {bandwidth}"),
            ));
        }
        Ok(Self {
            data: data.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluates the density at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.data.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.data
            .iter()
            .map(|&xi| {
                let u = (x - xi) / h;
                (-0.5 * u * u).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on an evenly spaced grid of `points` spanning
    /// the data (padded by 3 bandwidths each side). Returns `(x, f(x))`
    /// pairs — the series a density plot needs.
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than 2 grid points.
    pub fn grid(&self, points: usize) -> Result<Vec<(f64, f64)>> {
        if points < 2 {
            return Err(invalid("points", "need at least 2 grid points"));
        }
        let min = self.data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = min - 3.0 * self.bandwidth;
        let hi = max + 3.0 * self.bandwidth;
        let step = (hi - lo) / (points - 1) as f64;
        Ok((0..points)
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.eval(x))
            })
            .collect())
    }

    /// Counts density modes: local maxima of the gridded density whose
    /// height is at least `min_height_fraction` of the global maximum.
    ///
    /// # Errors
    ///
    /// Propagates grid errors.
    pub fn count_modes(&self, grid_points: usize, min_height_fraction: f64) -> Result<usize> {
        let grid = self.grid(grid_points)?;
        let peak = grid
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::NEG_INFINITY, f64::max);
        let threshold = peak * min_height_fraction;
        let mut modes = 0usize;
        for i in 0..grid.len() {
            let y = grid[i].1;
            let left = if i == 0 {
                f64::NEG_INFINITY
            } else {
                grid[i - 1].1
            };
            let right = if i == grid.len() - 1 {
                f64::NEG_INFINITY
            } else {
                grid[i + 1].1
            };
            if y > left && y > right && y >= threshold {
                modes += 1;
            }
        }
        Ok(modes.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn normal_data(seed: u64, n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        let mut u = splitmix(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = u().max(1e-12);
                let u2: f64 = u();
                mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn density_integrates_to_one() {
        let data = normal_data(1, 200, 10.0, 2.0);
        let kde = Kde::new(&data).unwrap();
        let grid = kde.grid(2000).unwrap();
        let step = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|(_, y)| y * step).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn density_peaks_near_the_mean() {
        let data = normal_data(2, 500, 42.0, 1.0);
        let kde = Kde::new(&data).unwrap();
        let grid = kde.grid(500).unwrap();
        let (peak_x, _) = grid
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((peak_x - 42.0).abs() < 0.5, "peak at {peak_x}");
    }

    #[test]
    fn unimodal_vs_bimodal_mode_count() {
        let uni = normal_data(3, 300, 0.0, 1.0);
        let kde = Kde::new(&uni).unwrap();
        assert_eq!(kde.count_modes(400, 0.15).unwrap(), 1);

        let mut bi = normal_data(4, 150, 0.0, 0.5);
        bi.extend(normal_data(5, 150, 8.0, 0.5));
        let kde = Kde::new(&bi).unwrap();
        assert_eq!(kde.count_modes(400, 0.15).unwrap(), 2);
    }

    #[test]
    fn trimodal_lottery_shape() {
        // Three clusters like the memory lottery: 77% / 20% / 3%.
        let mut data = normal_data(6, 770, 1.0, 0.005);
        data.extend(normal_data(7, 200, 0.965, 0.005));
        data.extend(normal_data(8, 30, 0.92, 0.006));
        let kde = Kde::new(&data).unwrap();
        let modes = kde.count_modes(600, 0.02).unwrap();
        assert!(modes >= 2, "expected the lottery clusters, got {modes}");
    }

    #[test]
    fn explicit_bandwidth_controls_smoothing() {
        let mut bi = normal_data(9, 100, 0.0, 0.3);
        bi.extend(normal_data(10, 100, 4.0, 0.3));
        // A huge bandwidth smears the modes into one.
        let smooth = Kde::with_bandwidth(&bi, 5.0).unwrap();
        assert_eq!(smooth.count_modes(300, 0.1).unwrap(), 1);
        // A reasonable bandwidth keeps two.
        let sharp = Kde::with_bandwidth(&bi, 0.3).unwrap();
        assert_eq!(sharp.count_modes(300, 0.1).unwrap(), 2);
    }

    #[test]
    fn validation() {
        assert!(Kde::new(&[1.0, 2.0]).is_err());
        assert!(Kde::new(&[3.0; 10]).is_err());
        assert!(Kde::with_bandwidth(&[1.0, 2.0, 3.0], 0.0).is_err());
        assert!(Kde::with_bandwidth(&[1.0, 2.0, 3.0], f64::NAN).is_err());
        let kde = Kde::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(kde.grid(1).is_err());
        assert!(kde.bandwidth() > 0.0);
    }
}
