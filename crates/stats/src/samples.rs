//! Validated sample sets.

use crate::descriptive::Summary;
use crate::error::{check_finite, Result, StatsError};
use crate::quantile::{quantile_sorted, QuantileMethod};
use serde::{Deserialize, Serialize};

/// A validated, non-empty set of finite `f64` measurements.
///
/// Construction checks that every value is finite, so downstream statistics
/// never have to re-validate or handle NaN ordering. A sorted copy is kept
/// alongside the original (insertion-ordered) data: order statistics need the
/// former, time-series diagnostics (autocorrelation, changepoints) the
/// latter.
///
/// # Examples
///
/// ```
/// use varstats::Samples;
///
/// let s = Samples::new(vec![3.0, 1.0, 2.0]).unwrap();
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.sorted(), &[1.0, 2.0, 3.0]);
/// assert_eq!(s.median().unwrap(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Samples {
    data: Vec<f64>,
    sorted: Vec<f64>,
}

impl Samples {
    /// Creates a sample set, validating that `data` is non-empty and finite.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] or [`StatsError::NonFiniteValue`].
    pub fn new(data: Vec<f64>) -> Result<Self> {
        check_finite(&data)?;
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        Ok(Self { data, sorted })
    }

    /// Creates a sample set from a slice.
    ///
    /// # Errors
    ///
    /// Same as [`Samples::new`].
    pub fn from_slice(data: &[f64]) -> Result<Self> {
        Self::new(data.to_vec())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: construction rejects empty input.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The samples in insertion (collection) order.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The samples in ascending order.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Sample median (Hyndman–Fan type 7).
    ///
    /// # Errors
    ///
    /// Never fails for a constructed `Samples`; kept fallible for interface
    /// symmetry with [`Samples::quantile`].
    pub fn median(&self) -> Result<f64> {
        quantile_sorted(&self.sorted, 0.5, QuantileMethod::Linear)
    }

    /// Sample quantile `q` using `method`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64, method: QuantileMethod) -> Result<f64> {
        quantile_sorted(&self.sorted, q, method)
    }

    /// Full descriptive summary (mean, spread, shape, order statistics).
    pub fn summary(&self) -> Summary {
        Summary::from_samples(self)
    }

    /// Appends a measurement, keeping the sorted view consistent.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFiniteValue`] if `value` is NaN or infinite.
    pub fn push(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(StatsError::NonFiniteValue {
                index: self.data.len(),
            });
        }
        self.data.push(value);
        let pos = self.sorted.partition_point(|&x| x < value);
        self.sorted.insert(pos, value);
        Ok(())
    }

    /// Consumes the set, returning the insertion-ordered data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl TryFrom<Vec<f64>> for Samples {
    type Error = StatsError;

    fn try_from(v: Vec<f64>) -> Result<Self> {
        Samples::new(v)
    }
}

impl AsRef<[f64]> for Samples {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_preserves_order() {
        let s = Samples::new(vec![5.0, 1.0, 4.0, 2.0]).unwrap();
        assert_eq!(s.data(), &[5.0, 1.0, 4.0, 2.0]);
        assert_eq!(s.sorted(), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert_eq!(Samples::new(vec![]).unwrap_err(), StatsError::EmptyInput);
        assert_eq!(
            Samples::new(vec![1.0, f64::NAN]).unwrap_err(),
            StatsError::NonFiniteValue { index: 1 }
        );
        assert!(Samples::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn push_maintains_sorted_invariant() {
        let mut s = Samples::new(vec![2.0, 4.0]).unwrap();
        s.push(3.0).unwrap();
        s.push(1.0).unwrap();
        s.push(5.0).unwrap();
        assert_eq!(s.sorted(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.data(), &[2.0, 4.0, 3.0, 1.0, 5.0]);
        assert!(s.push(f64::NAN).is_err());
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn median_of_odd_and_even() {
        let odd = Samples::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(odd.median().unwrap(), 2.0);
        let even = Samples::new(vec![4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(even.median().unwrap(), 2.5);
    }

    #[test]
    fn try_from_and_as_ref() {
        let s: Samples = vec![1.0, 2.0].try_into().unwrap();
        let r: &[f64] = s.as_ref();
        assert_eq!(r, &[1.0, 2.0]);
        assert_eq!(s.clone().into_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn serde_round_trip() {
        let s = Samples::new(vec![1.5, 0.5]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Samples = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
