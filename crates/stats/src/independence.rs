//! Independence diagnostics for measurement series.
//!
//! Confidence intervals assume i.i.d. samples. Repeated benchmark runs can
//! violate independence (warm caches, thermal state, background daemons),
//! so the paper's methodology — and any sound use of CONFIRM — starts by
//! checking it. Provided: the autocorrelation function, a turning-point
//! test, a runs test around the median, and Spearman rank correlation
//! against time.

use serde::{Deserialize, Serialize};

use crate::error::{check_finite, invalid, Result, StatsError};
use crate::normality::TestResult;
use crate::special::{chi_squared_cdf, normal_cdf};

/// Sample autocorrelation at a single `lag`.
///
/// # Errors
///
/// Returns an error on invalid input, `lag >= n`, or zero variance.
///
/// # Examples
///
/// ```
/// use varstats::independence::autocorrelation;
///
/// // A strictly alternating series is perfectly negatively correlated at
/// // lag 1.
/// let data = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
/// let r = autocorrelation(&data, 1).unwrap();
/// assert!(r < -0.8);
/// ```
pub fn autocorrelation(data: &[f64], lag: usize) -> Result<f64> {
    check_finite(data)?;
    let n = data.len();
    if lag >= n {
        return Err(invalid(
            "lag",
            format!("lag {lag} must be smaller than the series length {n}"),
        ));
    }
    let mean = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let num: f64 = (0..n - lag)
        .map(|i| (data[i] - mean) * (data[i + lag] - mean))
        .sum();
    Ok(num / denom)
}

/// Autocorrelation function up to `max_lag` (inclusive), starting at lag 1.
///
/// # Errors
///
/// Same as [`autocorrelation`].
pub fn acf(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    (1..=max_lag).map(|l| autocorrelation(data, l)).collect()
}

/// The approximate 95% white-noise band for an ACF of a series of length
/// `n`: correlations within `±1.96/sqrt(n)` are consistent with
/// independence.
pub fn acf_confidence_band(n: usize) -> f64 {
    1.96 / (n as f64).sqrt()
}

/// Verdict of an ACF-based independence check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcfCheck {
    /// Autocorrelations at lags `1..=max_lag`.
    pub correlations: Vec<f64>,
    /// The white-noise band used.
    pub band: f64,
    /// Lags whose correlation escapes the band.
    pub flagged_lags: Vec<usize>,
}

impl AcfCheck {
    /// Whether the series looks independent (no flagged lags).
    pub fn looks_independent(&self) -> bool {
        self.flagged_lags.is_empty()
    }
}

/// Runs the ACF check at lags `1..=max_lag` against the 95% band.
///
/// # Errors
///
/// Same as [`autocorrelation`].
pub fn acf_check(data: &[f64], max_lag: usize) -> Result<AcfCheck> {
    let correlations = acf(data, max_lag)?;
    let band = acf_confidence_band(data.len());
    let flagged_lags = correlations
        .iter()
        .enumerate()
        .filter(|(_, &r)| r.abs() > band)
        .map(|(i, _)| i + 1)
        .collect();
    Ok(AcfCheck {
        correlations,
        band,
        flagged_lags,
    })
}

/// Ljung–Box portmanteau test: are the first `max_lag` autocorrelations
/// jointly zero?
///
/// `Q = n (n + 2) * sum_k rho_k^2 / (n - k)`, compared against
/// chi-squared with `max_lag` degrees of freedom. The standard "is this
/// series white noise" test — more powerful than eyeballing single lags
/// against the ACF band.
///
/// # Errors
///
/// Returns an error on invalid input, `max_lag == 0`, or a series shorter
/// than `3 * max_lag`.
pub fn ljung_box(data: &[f64], max_lag: usize) -> Result<TestResult> {
    check_finite(data)?;
    if max_lag == 0 {
        return Err(invalid("max_lag", "must be at least 1"));
    }
    let n = data.len();
    if n < 3 * max_lag {
        return Err(StatsError::TooFewSamples {
            needed: 3 * max_lag,
            got: n,
        });
    }
    let nf = n as f64;
    let mut q = 0.0;
    for k in 1..=max_lag {
        let rho = autocorrelation(data, k)?;
        q += rho * rho / (nf - k as f64);
    }
    q *= nf * (nf + 2.0);
    let p = 1.0 - chi_squared_cdf(q, max_lag as f64)?;
    Ok(TestResult {
        statistic: q,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Lag-plot data: the `(x_t, x_{t+lag})` pairs whose scatter is the
/// classic visual i.i.d. check (structure in the plot = dependence).
///
/// # Errors
///
/// Returns an error on invalid input or `lag >= n`.
pub fn lag_pairs(data: &[f64], lag: usize) -> Result<Vec<(f64, f64)>> {
    check_finite(data)?;
    if lag == 0 || lag >= data.len() {
        return Err(invalid(
            "lag",
            format!("must be in [1, {}), got {lag}", data.len()),
        ));
    }
    Ok(data.windows(lag + 1).map(|w| (w[0], w[lag])).collect())
}

/// Turning-point test of randomness.
///
/// Counts local extrema; for an i.i.d. series the count is asymptotically
/// normal with mean `2(n-2)/3` and variance `(16n - 29)/90`. Small p-values
/// indicate serial structure (trend or oscillation).
///
/// # Errors
///
/// Returns an error with fewer than 20 samples (asymptotics unreliable) or
/// invalid input.
pub fn turning_point_test(data: &[f64]) -> Result<TestResult> {
    check_finite(data)?;
    let n = data.len();
    if n < 20 {
        return Err(StatsError::TooFewSamples { needed: 20, got: n });
    }
    let mut turning_points = 0usize;
    for w in data.windows(3) {
        if (w[1] > w[0] && w[1] > w[2]) || (w[1] < w[0] && w[1] < w[2]) {
            turning_points += 1;
        }
    }
    let nf = n as f64;
    let mean = 2.0 * (nf - 2.0) / 3.0;
    let var = (16.0 * nf - 29.0) / 90.0;
    let z = (turning_points as f64 - mean) / var.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Wald–Wolfowitz runs test around the median.
///
/// Dichotomizes the series at its median and counts runs of consecutive
/// same-side values; too few runs indicates positive serial correlation,
/// too many indicates oscillation.
///
/// # Errors
///
/// Returns an error with fewer than 20 samples or invalid input, or when
/// one side of the median is empty.
pub fn runs_test(data: &[f64]) -> Result<TestResult> {
    check_finite(data)?;
    let n = data.len();
    if n < 20 {
        return Err(StatsError::TooFewSamples { needed: 20, got: n });
    }
    let median = crate::quantile::median(data)?;
    // Values equal to the median are dropped, the usual convention.
    let signs: Vec<bool> = data
        .iter()
        .filter(|&&x| x != median)
        .map(|&x| x > median)
        .collect();
    let n_pos = signs.iter().filter(|&&s| s).count() as f64;
    let n_neg = signs.len() as f64 - n_pos;
    if n_pos == 0.0 || n_neg == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let mut runs = 1usize;
    for w in signs.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    let m = signs.len() as f64;
    let mean = 2.0 * n_pos * n_neg / m + 1.0;
    let var = 2.0 * n_pos * n_neg * (2.0 * n_pos * n_neg - m) / (m * m * (m - 1.0));
    if var <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let z = (runs as f64 - mean) / var.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Assigns mid-ranks (average rank for ties) to `data`.
fn ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("finite"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation between two series, with an asymptotic
/// (t-approximation) p-value for the null of no monotone association.
///
/// Returns `(rho, p_value)`.
///
/// # Errors
///
/// Returns an error on invalid input, mismatched lengths, or fewer than 10
/// pairs.
pub fn spearman(a: &[f64], b: &[f64]) -> Result<(f64, f64)> {
    check_finite(a)?;
    check_finite(b)?;
    if a.len() != b.len() {
        return Err(invalid(
            "b",
            format!("length mismatch: {} vs {}", a.len(), b.len()),
        ));
    }
    let n = a.len();
    if n < 10 {
        return Err(StatsError::TooFewSamples { needed: 10, got: n });
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da == 0.0 || db == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let rho: f64 = num / (da * db).sqrt();
    let rho_c = rho.clamp(-0.999_999_999, 0.999_999_999);
    let t = rho_c * ((n as f64 - 2.0) / (1.0 - rho_c * rho_c)).sqrt();
    let p = 2.0 * (1.0 - crate::special::student_t_cdf(t.abs(), n as f64 - 2.0)?);
    Ok((rho, p.clamp(0.0, 1.0)))
}

/// Spearman correlation of a series against its own index — a monotone
/// trend detector for measurement campaigns.
///
/// # Errors
///
/// Same as [`spearman`].
pub fn trend_test(data: &[f64]) -> Result<(f64, f64)> {
    let time: Vec<f64> = (0..data.len()).map(|i| i as f64).collect();
    spearman(&time, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64) / ((1u64 << 53) as f64)
            })
            .collect()
    }

    #[test]
    fn iid_series_has_small_acf() {
        let data = lcg_series(1, 500);
        let check = acf_check(&data, 10).unwrap();
        // Allow a stray lag or two to brush the 95% band.
        assert!(check.flagged_lags.len() <= 1, "{:?}", check.flagged_lags);
    }

    #[test]
    fn trending_series_has_large_acf() {
        let data: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
        let r1 = autocorrelation(&data, 1).unwrap();
        assert!(r1 > 0.9, "r1={r1}");
        let check = acf_check(&data, 5).unwrap();
        assert!(!check.looks_independent());
    }

    #[test]
    fn acf_lag_zero_would_be_one() {
        let data = lcg_series(2, 100);
        let r0 = autocorrelation(&data, 0).unwrap();
        assert!((r0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_validates_input() {
        assert!(autocorrelation(&[1.0, 2.0], 2).is_err());
        assert!(autocorrelation(&[5.0; 10], 1).is_err());
        assert!(autocorrelation(&[], 0).is_err());
    }

    #[test]
    fn ljung_box_accepts_noise_rejects_ar1() {
        let noise = lcg_series(31, 400);
        let r = ljung_box(&noise, 10).unwrap();
        assert!(r.p_value > 0.01, "white noise rejected, p={}", r.p_value);

        // AR(1) with strong memory.
        let mut y = 0.0;
        let seed = lcg_series(32, 400);
        let ar1: Vec<f64> = seed
            .iter()
            .map(|u| {
                y = 0.7 * y + u;
                y
            })
            .collect();
        let r = ljung_box(&ar1, 10).unwrap();
        assert!(r.p_value < 1e-6, "AR(1) accepted, p={}", r.p_value);
    }

    #[test]
    fn ljung_box_validation() {
        assert!(ljung_box(&lcg_series(1, 20), 10).is_err());
        assert!(ljung_box(&lcg_series(1, 100), 0).is_err());
    }

    #[test]
    fn lag_pairs_shape_and_content() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let pairs = lag_pairs(&data, 2).unwrap();
        assert_eq!(pairs, vec![(1.0, 3.0), (2.0, 4.0), (3.0, 5.0)]);
        assert!(lag_pairs(&data, 0).is_err());
        assert!(lag_pairs(&data, 5).is_err());
    }

    #[test]
    fn turning_point_accepts_random_rejects_trend() {
        let random = lcg_series(3, 300);
        let r = turning_point_test(&random).unwrap();
        assert!(r.p_value > 0.05, "random rejected, p={}", r.p_value);

        let trend: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let r = turning_point_test(&trend).unwrap();
        assert!(r.p_value < 0.001, "trend accepted, p={}", r.p_value);
    }

    #[test]
    fn turning_point_rejects_alternating() {
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let r = turning_point_test(&alt).unwrap();
        // Alternating has the maximum number of turning points.
        assert!(r.statistic > 3.0);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn runs_test_behaviour() {
        let random = lcg_series(9, 300);
        let r = runs_test(&random).unwrap();
        assert!(r.p_value > 0.05, "random rejected, p={}", r.p_value);

        // Strong positive correlation: long blocks below then above median.
        let mut blocky = vec![0.0; 150];
        blocky.extend(vec![1.0; 150]);
        let r = runs_test(&blocky).unwrap();
        assert!(r.p_value < 1e-6, "blocky accepted, p={}", r.p_value);
        assert!(r.statistic < 0.0, "too few runs should give negative z");
    }

    #[test]
    fn runs_test_validation() {
        assert!(runs_test(&[1.0; 30]).is_err());
        assert!(runs_test(&lcg_series(1, 10)).is_err());
    }

    #[test]
    fn spearman_perfect_monotone() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x.exp().min(1e300)).collect();
        let (rho, p) = spearman(&a, &b).unwrap();
        assert!((rho - 1.0).abs() < 1e-9);
        assert!(p < 1e-6);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        let (rho, _) = spearman(&a, &c).unwrap();
        assert!((rho + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_independent_series() {
        let a = lcg_series(4, 200);
        let b = lcg_series(5, 200);
        let (rho, p) = spearman(&a, &b).unwrap();
        assert!(rho.abs() < 0.2, "rho={rho}");
        assert!(p > 0.01, "p={p}");
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 5.0, 5.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let (rho, _) = spearman(&a, &b).unwrap();
        assert!(rho > 0.9);
    }

    #[test]
    fn trend_test_flags_drift() {
        let drifting: Vec<f64> = (0..100).map(|i| 100.0 + 0.5 * i as f64).collect();
        let (rho, p) = trend_test(&drifting).unwrap();
        assert!(rho > 0.99);
        assert!(p < 1e-6);
        let flat = lcg_series(6, 100);
        let (_, p) = trend_test(&flat).unwrap();
        assert!(p > 0.01);
    }

    #[test]
    fn ranks_midrank_convention() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
