//! Normality tests.
//!
//! The paper's pivotal empirical observation is that most benchmark sample
//! sets fail normality tests, invalidating classical mean/t-interval
//! methodology. The primary test used (here and in the paper) is
//! **Shapiro–Wilk**, implemented from Royston's AS R94 algorithm
//! (the same algorithm behind R's `shapiro.test` and SciPy's `shapiro`).
//! Anderson–Darling and Jarque–Bera are provided as cross-checks.

use serde::{Deserialize, Serialize};

use crate::descriptive::Moments;
use crate::error::{check_finite, Result, StatsError};
use crate::special::{normal_cdf, normal_quantile};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (W for Shapiro–Wilk, A*^2 for Anderson–Darling,
    /// JB for Jarque–Bera).
    pub statistic: f64,
    /// The p-value of the test under the null hypothesis of normality.
    pub p_value: f64,
}

impl TestResult {
    /// Whether the null hypothesis (data is normal) survives at level
    /// `alpha`, i.e. `p_value > alpha`.
    pub fn is_normal(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

fn sorted_copy(data: &[f64]) -> Result<Vec<f64>> {
    check_finite(data)?;
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    Ok(v)
}

/// Shapiro–Wilk test of normality (Royston 1995, AS R94).
///
/// Supports `3 <= n <= 5000`. The statistic `W` is close to 1 for normal
/// data; small `W` (and small p-value) indicates departure from normality.
///
/// # Errors
///
/// Returns an error on invalid input, `n < 3` or `n > 5000`, or if all
/// samples are identical.
///
/// # Examples
///
/// ```
/// use varstats::normality::shapiro_wilk;
///
/// // Perfect normal scores look extremely normal.
/// let data: Vec<f64> = (1..=50)
///     .map(|i| varstats::special::normal_quantile((i as f64 - 0.5) / 50.0).unwrap())
///     .collect();
/// let r = shapiro_wilk(&data).unwrap();
/// assert!(r.statistic > 0.98);
/// assert!(r.is_normal(0.05));
/// ```
pub fn shapiro_wilk(data: &[f64]) -> Result<TestResult> {
    let x = sorted_copy(data)?;
    let n = x.len();
    if n < 3 {
        return Err(StatsError::TooFewSamples { needed: 3, got: n });
    }
    if n > 5000 {
        return Err(crate::error::invalid(
            "n",
            format!("Shapiro-Wilk is calibrated for n <= 5000, got {n}"),
        ));
    }
    if x[0] == x[n - 1] {
        return Err(StatsError::ZeroVariance);
    }

    // Expected normal order statistics (Blom scores).
    let nf = n as f64;
    let mut m = vec![0.0f64; n];
    for (i, mi) in m.iter_mut().enumerate() {
        *mi = normal_quantile(((i + 1) as f64 - 0.375) / (nf + 0.25))?;
    }
    let ssq_m: f64 = m.iter().map(|v| v * v).sum();
    let rsn = 1.0 / nf.sqrt();

    // Royston's polynomial-corrected weights for the two extreme order
    // statistics (and the next pair when n > 5).
    let mut a = vec![0.0f64; n];
    if n == 3 {
        a[0] = std::f64::consts::FRAC_1_SQRT_2;
        a[2] = -a[0];
    } else {
        let c_n = m[n - 1] / ssq_m.sqrt();
        let a_n = c_n + 0.221_157 * rsn - 0.147_981 * rsn.powi(2) - 2.071_190 * rsn.powi(3)
            + 4.434_685 * rsn.powi(4)
            - 2.706_056 * rsn.powi(5);
        if n > 5 {
            let c_n1 = m[n - 2] / ssq_m.sqrt();
            let a_n1 = c_n1 + 0.042_981 * rsn - 0.293_762 * rsn.powi(2) - 1.752_461 * rsn.powi(3)
                + 5.682_633 * rsn.powi(4)
                - 3.582_633 * rsn.powi(5);
            let phi = (ssq_m - 2.0 * m[n - 1].powi(2) - 2.0 * m[n - 2].powi(2))
                / (1.0 - 2.0 * a_n.powi(2) - 2.0 * a_n1.powi(2));
            a[n - 1] = a_n;
            a[n - 2] = a_n1;
            a[0] = -a_n;
            a[1] = -a_n1;
            let scale = phi.sqrt();
            for i in 2..n - 2 {
                a[i] = m[i] / scale;
            }
        } else {
            let phi = (ssq_m - 2.0 * m[n - 1].powi(2)) / (1.0 - 2.0 * a_n.powi(2));
            a[n - 1] = a_n;
            a[0] = -a_n;
            let scale = phi.sqrt();
            for i in 1..n - 1 {
                a[i] = m[i] / scale;
            }
        }
    }

    // W = (sum a_i x_(i))^2 / sum (x_i - mean)^2.
    let mean = x.iter().sum::<f64>() / nf;
    let ssq_dev: f64 = x.iter().map(|v| (v - mean).powi(2)).sum();
    let num: f64 = a.iter().zip(x.iter()).map(|(ai, xi)| ai * xi).sum();
    let w = ((num * num) / ssq_dev).min(1.0);

    // P-value transforms (Royston 1995).
    let p_value = if n == 3 {
        let pi = std::f64::consts::PI;
        ((6.0 / pi) * (w.sqrt().asin() - 0.75f64.sqrt().asin())).clamp(0.0, 1.0)
    } else if n <= 11 {
        let g = -2.273 + 0.459 * nf;
        let arg = g - (1.0 - w).ln();
        if arg <= 0.0 {
            0.0
        } else {
            let wt = -arg.ln();
            let mu = 0.544 - 0.399_78 * nf + 0.025_054 * nf * nf - 0.000_671_4 * nf.powi(3);
            let sigma =
                (1.3822 - 0.77857 * nf + 0.062_767 * nf * nf - 0.002_032_2 * nf.powi(3)).exp();
            1.0 - normal_cdf((wt - mu) / sigma)
        }
    } else {
        let ln_n = nf.ln();
        let wt = (1.0 - w).ln();
        let mu = -1.5861 - 0.310_82 * ln_n - 0.083_751 * ln_n * ln_n + 0.003_891_5 * ln_n.powi(3);
        let sigma = (-0.4803 - 0.082_676 * ln_n + 0.003_030_2 * ln_n * ln_n).exp();
        1.0 - normal_cdf((wt - mu) / sigma)
    };

    Ok(TestResult {
        statistic: w,
        p_value: p_value.clamp(0.0, 1.0),
    })
}

/// Anderson–Darling test of normality with estimated mean and variance
/// (the "case 4" small-sample adjustment of D'Agostino & Stephens).
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 8 samples (the p-value
/// approximation is unreliable below that), or zero variance.
pub fn anderson_darling(data: &[f64]) -> Result<TestResult> {
    let x = sorted_copy(data)?;
    let n = x.len();
    if n < 8 {
        return Err(StatsError::TooFewSamples { needed: 8, got: n });
    }
    let m: Moments = x.iter().copied().collect();
    let sd = m.std_dev();
    if sd == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let nf = n as f64;
    let mut sum = 0.0;
    for i in 0..n {
        let yi = (x[i] - m.mean()) / sd;
        let yrev = (x[n - 1 - i] - m.mean()) / sd;
        // Clamp CDF values away from 0/1 so the logs stay finite.
        let f1 = normal_cdf(yi).clamp(1e-300, 1.0 - 1e-16);
        let f2 = normal_cdf(yrev).clamp(1e-300, 1.0 - 1e-16);
        sum += (2.0 * (i + 1) as f64 - 1.0) * (f1.ln() + (1.0 - f2).ln());
    }
    let a2 = -nf - sum / nf;
    let a2_star = a2 * (1.0 + 0.75 / nf + 2.25 / (nf * nf));
    let p = if a2_star >= 0.6 {
        (1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star).exp()
    } else if a2_star >= 0.34 {
        (0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star).exp()
    } else if a2_star > 0.2 {
        1.0 - (-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star).exp()
    } else {
        1.0 - (-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star).exp()
    };
    Ok(TestResult {
        statistic: a2_star,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Jarque–Bera test of normality (skewness/kurtosis based, asymptotic).
///
/// Only trustworthy for large `n` (hundreds); included for cross-checking.
///
/// # Errors
///
/// Returns an error on invalid input, fewer than 20 samples, or zero
/// variance.
pub fn jarque_bera(data: &[f64]) -> Result<TestResult> {
    check_finite(data)?;
    let n = data.len();
    if n < 20 {
        return Err(StatsError::TooFewSamples { needed: 20, got: n });
    }
    let m: Moments = data.iter().copied().collect();
    if m.std_dev() == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let s = m.skewness();
    let k = m.excess_kurtosis();
    let jb = n as f64 / 6.0 * (s * s + k * k / 4.0);
    // Chi-squared survival with 2 degrees of freedom is exp(-x/2).
    let p = (-jb / 2.0).exp();
    Ok(TestResult {
        statistic: jb,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic standard-normal generator (splitmix64 + Box–Muller).
    fn normal_stream(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                ((z >> 11) as f64) / ((1u64 << 53) as f64)
            };
            let u1: f64 = next().max(1e-12);
            let u2: f64 = next();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }

    #[test]
    fn shapiro_perfect_normal_scores_pass() {
        for n in [10usize, 30, 100, 500] {
            let data: Vec<f64> = (1..=n)
                .map(|i| normal_quantile((i as f64 - 0.5) / n as f64).unwrap())
                .collect();
            let r = shapiro_wilk(&data).unwrap();
            assert!(r.statistic > 0.97, "n={n} W={}", r.statistic);
            assert!(r.p_value > 0.5, "n={n} p={}", r.p_value);
        }
    }

    #[test]
    fn shapiro_uniform_1_to_10_matches_r() {
        // R: shapiro.test(1:10) gives W ~ 0.970, p ~ 0.89.
        let data: Vec<f64> = (1..=10).map(f64::from).collect();
        let r = shapiro_wilk(&data).unwrap();
        assert!((r.statistic - 0.970).abs() < 0.01, "W={}", r.statistic);
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn shapiro_rejects_exponential_data() {
        let mut gen = normal_stream(3);
        // Exponential via -ln(U) where U built from normal CDF of stream.
        let data: Vec<f64> = (0..80)
            .map(|_| -normal_cdf(gen()).clamp(1e-9, 1.0 - 1e-9).ln())
            .collect();
        let r = shapiro_wilk(&data).unwrap();
        assert!(r.p_value < 0.01, "p={} W={}", r.p_value, r.statistic);
    }

    #[test]
    fn shapiro_rejects_bimodal_data() {
        let mut data = Vec::new();
        for i in 0..40 {
            data.push(10.0 + (i % 5) as f64 * 0.01);
            data.push(20.0 + (i % 5) as f64 * 0.01);
        }
        let r = shapiro_wilk(&data).unwrap();
        assert!(r.p_value < 0.001, "bimodal p={}", r.p_value);
    }

    #[test]
    fn shapiro_is_location_scale_invariant() {
        let mut gen = normal_stream(17);
        let data: Vec<f64> = (0..60).map(|_| gen()).collect();
        let shifted: Vec<f64> = data.iter().map(|x| 1000.0 + 3.5 * x).collect();
        let r1 = shapiro_wilk(&data).unwrap();
        let r2 = shapiro_wilk(&shifted).unwrap();
        assert!((r1.statistic - r2.statistic).abs() < 1e-9);
        assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }

    #[test]
    fn shapiro_false_positive_rate_is_calibrated() {
        // On genuinely normal data, rejection at alpha = 0.05 should occur
        // roughly 5% of the time.
        let mut rejections = 0;
        let trials = 300;
        for t in 0..trials {
            let mut gen = normal_stream(1000 + t);
            let data: Vec<f64> = (0..30).map(|_| gen()).collect();
            if !shapiro_wilk(&data).unwrap().is_normal(0.05) {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(
            (0.005..=0.13).contains(&rate),
            "false positive rate {rate} not near 0.05"
        );
    }

    #[test]
    fn shapiro_input_validation() {
        assert!(shapiro_wilk(&[1.0, 2.0]).is_err());
        assert_eq!(
            shapiro_wilk(&[5.0; 10]).unwrap_err(),
            StatsError::ZeroVariance
        );
        let huge = vec![0.0; 5001];
        assert!(shapiro_wilk(&huge).is_err());
    }

    #[test]
    fn shapiro_n3_edge_case() {
        let r = shapiro_wilk(&[1.0, 2.0, 3.0]).unwrap();
        assert!(r.statistic > 0.99);
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn anderson_darling_passes_normal_rejects_skewed() {
        let mut gen = normal_stream(5);
        let normal: Vec<f64> = (0..100).map(|_| gen()).collect();
        let r = anderson_darling(&normal).unwrap();
        assert!(r.p_value > 0.05, "normal data rejected, p={}", r.p_value);

        let skewed: Vec<f64> = (0..100)
            .map(|_| -normal_cdf(gen()).clamp(1e-9, 1.0 - 1e-9).ln())
            .collect();
        let r = anderson_darling(&skewed).unwrap();
        assert!(r.p_value < 0.01, "skewed data accepted, p={}", r.p_value);
    }

    #[test]
    fn anderson_darling_validation() {
        assert!(anderson_darling(&[1.0; 5]).is_err());
        assert!(anderson_darling(&[3.0; 20]).is_err());
    }

    #[test]
    fn jarque_bera_behaviour() {
        let mut gen = normal_stream(11);
        let normal: Vec<f64> = (0..500).map(|_| gen()).collect();
        let r = jarque_bera(&normal).unwrap();
        assert!(r.p_value > 0.05, "p={}", r.p_value);

        let heavy: Vec<f64> = (0..500)
            .map(|_| {
                let u = normal_cdf(gen()).clamp(1e-9, 1.0 - 1e-9);
                // Pareto-like heavy tail.
                (1.0 - u).powf(-0.5)
            })
            .collect();
        let r = jarque_bera(&heavy).unwrap();
        assert!(r.p_value < 0.01, "heavy-tail accepted, p={}", r.p_value);
        assert!(jarque_bera(&[1.0; 25]).is_err());
        assert!(jarque_bera(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn tests_agree_on_clear_cases() {
        let mut gen = normal_stream(23);
        let data: Vec<f64> = (0..200).map(|_| 50.0 + 2.0 * gen()).collect();
        assert!(shapiro_wilk(&data).unwrap().is_normal(0.01));
        assert!(anderson_darling(&data).unwrap().is_normal(0.01));
        assert!(jarque_bera(&data).unwrap().is_normal(0.01));
    }
}
