//! Incremental (online) change-point detection for run-history streams.
//!
//! The batch detectors in [`crate::changepoint`] (PELT, binary
//! segmentation, permutation CUSUM) assume the whole series is in hand.
//! A regression sentinel watching a run history sees points one at a
//! time and must report a regime shift *as it happens*, not at the next
//! batch re-analysis. [`OnlineCusum`] adapts the same machinery to that
//! setting: a two-sided Page CUSUM over robustly standardized
//! deviations, with the reference level and scale estimated by
//! median/MAD over the current regime (so the detector keeps working on
//! the heavy-tailed, outlier-ridden series the paper documents).
//!
//! Algorithm, per pushed point `x`:
//!
//! 1. Standardize: `z = (x - median) / MAD` over the current segment's
//!    reference window (MAD→IQR→stddev fallback ladder from
//!    [`crate::robust::robust_location_scale`]).
//! 2. Update the one-sided statistics
//!    `S⁺ = max(0, S⁺ + z - k)` and `S⁻ = max(0, S⁻ - z - k)` with
//!    drift `k` (shifts smaller than `k` robust-σ are absorbed).
//! 3. Alarm when either statistic exceeds the decision threshold `h`;
//!    the change-point estimate is the index where the alarming
//!    statistic last left zero — the classic CUSUM changepoint
//!    estimator — and a new segment starts there.
//!
//! Detection latency after a true shift of size `δ` robust-σ is roughly
//! `h / (δ - k)` points, so the defaults (`k = 0.5`, `h = 6`) flag a
//! one-σ shift after ~12 points and a large regression near-immediately.
//! Each push costs `O(w log w)` in the reference-window size `w`
//! (bounded by [`OnlineCusumConfig::max_reference`]), which at
//! run-history scale — one point per campaign — is negligible.

use serde::{Deserialize, Serialize};

use crate::error::{invalid, Result};
use crate::robust::robust_location_scale;

/// Tuning for [`OnlineCusum`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineCusumConfig {
    /// Points a segment must accumulate before the detector starts
    /// scoring (the reference median/MAD need something to stand on).
    /// Must be at least 2.
    pub warm_up: usize,
    /// Drift `k`, in robust-σ: per-point slack subtracted from the
    /// statistics, absorbing shifts smaller than `k`. Must be ≥ 0.
    pub drift: f64,
    /// Decision threshold `h`, in robust-σ. Must be > 0.
    pub threshold: f64,
    /// Reference window cap: the median/MAD are estimated over at most
    /// this many trailing points of the current segment, bounding
    /// per-push cost. Must be at least `warm_up`.
    pub max_reference: usize,
}

impl Default for OnlineCusumConfig {
    /// `warm_up = 12`, `drift = 0.5`, `threshold = 6.0`,
    /// `max_reference = 256`. The classic CUSUM operating point is
    /// (k=0.5, h=5) with *known* location and scale; because this
    /// detector estimates both from the stream, the threshold is raised
    /// a sigma and the warm-up lengthened so early-window estimation
    /// error does not masquerade as a shift.
    fn default() -> Self {
        OnlineCusumConfig {
            warm_up: 12,
            drift: 0.5,
            threshold: 6.0,
            max_reference: 256,
        }
    }
}

/// Incremental two-sided robust CUSUM detector. Feed points in arrival
/// order with [`push`](OnlineCusum::push); detected change-points are
/// returned as they fire and accumulate in
/// [`changepoints`](OnlineCusum::changepoints). Indices follow the
/// batch-detector convention: change-point `i` means a new regime
/// starts at point `i`.
///
/// Deterministic: the detector is a pure function of the pushed
/// sequence and the configuration.
///
/// # Examples
///
/// ```
/// use varstats::online::OnlineCusum;
///
/// let mut detector = OnlineCusum::new(Default::default()).unwrap();
/// let mut fired = Vec::new();
/// for i in 0..40 {
///     let x = if i < 20 { 10.0 + (i % 3) as f64 * 0.1 } else { 14.0 + (i % 3) as f64 * 0.1 };
///     if let Some(cp) = detector.push(x).unwrap() {
///         fired.push(cp);
///     }
/// }
/// assert_eq!(fired.len(), 1);
/// assert!(fired[0] >= 19 && fired[0] <= 23, "{fired:?}");
/// ```
#[derive(Debug, Clone)]
pub struct OnlineCusum {
    config: OnlineCusumConfig,
    points: Vec<f64>,
    /// Index where the current regime starts.
    segment_start: usize,
    /// Upward statistic `S⁺` and the index where its current excursion
    /// left zero.
    pos: f64,
    pos_start: usize,
    /// Downward statistic `S⁻` and its excursion start.
    neg: f64,
    neg_start: usize,
    changepoints: Vec<usize>,
}

/// Standardized z-scores are clamped to this magnitude so a deviation
/// from a perfectly constant reference (robust scale 0 → infinite
/// surprise) still alarms in one step without poisoning the statistic
/// with actual infinities.
const Z_CLAMP: f64 = 1.0e9;

impl OnlineCusum {
    /// Creates a detector.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is out of domain (see the
    /// per-field requirements on [`OnlineCusumConfig`]).
    pub fn new(config: OnlineCusumConfig) -> Result<Self> {
        if config.warm_up < 2 {
            return Err(invalid(
                "warm_up",
                format!("must be at least 2, got {}", config.warm_up),
            ));
        }
        if !(config.drift >= 0.0 && config.drift.is_finite()) {
            return Err(invalid(
                "drift",
                format!("must be finite and >= 0, got {}", config.drift),
            ));
        }
        if !(config.threshold > 0.0 && config.threshold.is_finite()) {
            return Err(invalid(
                "threshold",
                format!("must be finite and > 0, got {}", config.threshold),
            ));
        }
        if config.max_reference < config.warm_up {
            return Err(invalid(
                "max_reference",
                format!(
                    "must be at least warm_up ({}), got {}",
                    config.warm_up, config.max_reference
                ),
            ));
        }
        Ok(OnlineCusum {
            config,
            points: Vec::new(),
            segment_start: 0,
            pos: 0.0,
            pos_start: 0,
            neg: 0.0,
            neg_start: 0,
            changepoints: Vec::new(),
        })
    }

    /// Feeds the next point; returns `Some(index)` when this point
    /// triggers a change-point alarm (the index where the new regime is
    /// estimated to start).
    ///
    /// # Errors
    ///
    /// Returns an error on a non-finite observation; the detector state
    /// is unchanged in that case.
    pub fn push(&mut self, x: f64) -> Result<Option<usize>> {
        if !x.is_finite() {
            return Err(invalid("x", format!("must be finite, got {x}")));
        }
        let i = self.points.len();
        self.points.push(x);
        let seg_len = i - self.segment_start;
        if seg_len < self.config.warm_up {
            return Ok(None);
        }
        // Reference: the trailing window of the current segment, up to
        // but excluding the point being scored. The MAD tolerates the
        // contamination an in-progress shift leaves in the window.
        let ref_start = self
            .segment_start
            .max(i.saturating_sub(self.config.max_reference));
        let (location, scale) = robust_location_scale(&self.points[ref_start..i])
            .expect("reference window is >= warm_up >= 2 finite points");
        let z = if scale > 0.0 {
            ((x - location) / scale).clamp(-Z_CLAMP, Z_CLAMP)
        } else if x == location {
            0.0
        } else if x > location {
            Z_CLAMP
        } else {
            -Z_CLAMP
        };
        if self.pos == 0.0 {
            self.pos_start = i;
        }
        self.pos = (self.pos + z - self.config.drift).max(0.0);
        if self.neg == 0.0 {
            self.neg_start = i;
        }
        self.neg = (self.neg - z - self.config.drift).max(0.0);
        let fired = if self.pos > self.config.threshold {
            Some(self.pos_start)
        } else if self.neg > self.config.threshold {
            Some(self.neg_start)
        } else {
            None
        };
        if let Some(cp) = fired {
            self.changepoints.push(cp);
            self.segment_start = cp;
            self.pos = 0.0;
            self.neg = 0.0;
        }
        Ok(fired)
    }

    /// All change-points detected so far, in firing order (which is also
    /// ascending index order).
    pub fn changepoints(&self) -> &[usize] {
        &self.changepoints
    }

    /// Number of points pushed.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Index where the current regime starts (0 until a change-point
    /// fires).
    pub fn segment_start(&self) -> usize {
        self.segment_start
    }

    /// The configuration the detector runs with.
    pub fn config(&self) -> &OnlineCusumConfig {
        &self.config
    }
}

/// Runs a fresh [`OnlineCusum`] over a full series, returning every
/// change-point. The offline convenience for reports that re-scan a
/// stored history; byte-for-byte the same answer an incremental feed
/// would have produced.
///
/// # Errors
///
/// Returns an error on invalid configuration or a non-finite point.
pub fn online_changepoints(data: &[f64], config: OnlineCusumConfig) -> Result<Vec<usize>> {
    let mut detector = OnlineCusum::new(config)?;
    for &x in data {
        detector.push(x)?;
    }
    Ok(detector.changepoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_steps(levels: &[(f64, usize)], seed: u64, noise: f64) -> Vec<f64> {
        let mut state = seed;
        let mut uniform = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut out = Vec::new();
        for &(level, len) in levels {
            for _ in 0..len {
                out.push(level + noise * (uniform() - 0.5));
            }
        }
        out
    }

    #[test]
    fn detects_upward_shift_with_small_latency() {
        let data = noisy_steps(&[(10.0, 60), (13.0, 60)], 1, 0.8);
        let cps = online_changepoints(&data, Default::default()).unwrap();
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert!(
            (cps[0] as i64 - 60).unsigned_abs() <= 4,
            "changepoint {} should be near 60",
            cps[0]
        );
    }

    #[test]
    fn detects_downward_shift() {
        let data = noisy_steps(&[(20.0, 50), (15.0, 50)], 2, 1.0);
        let cps = online_changepoints(&data, Default::default()).unwrap();
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert!((cps[0] as i64 - 50).unsigned_abs() <= 4, "{cps:?}");
    }

    #[test]
    fn silent_on_stationary_noise() {
        let data = noisy_steps(&[(10.0, 400)], 3, 1.0);
        let cps = online_changepoints(&data, Default::default()).unwrap();
        assert!(cps.is_empty(), "{cps:?}");
    }

    #[test]
    fn detects_multiple_regimes_in_order() {
        let data = noisy_steps(&[(10.0, 60), (16.0, 60), (8.0, 60)], 4, 0.8);
        let cps = online_changepoints(&data, Default::default()).unwrap();
        assert_eq!(cps.len(), 2, "{cps:?}");
        assert!((cps[0] as i64 - 60).unsigned_abs() <= 4, "{cps:?}");
        assert!((cps[1] as i64 - 120).unsigned_abs() <= 4, "{cps:?}");
    }

    #[test]
    fn constant_then_jump_alarms_in_one_step() {
        // Robust scale 0: the first deviating point is infinitely
        // surprising and must alarm immediately, with the change-point
        // at the deviating point itself.
        let mut data = vec![5.0; 20];
        data.push(6.0);
        let cps = online_changepoints(&data, Default::default()).unwrap();
        assert_eq!(cps, vec![20]);
    }

    #[test]
    fn agrees_with_batch_pelt_on_clean_shift() {
        let data = noisy_steps(&[(100.0, 80), (112.0, 80)], 5, 2.0);
        let online = online_changepoints(&data, Default::default()).unwrap();
        let batch = crate::changepoint::pelt_mean(&data, None).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(online.len(), 1, "{online:?}");
        assert!(
            (online[0] as i64 - batch[0] as i64).abs() <= 4,
            "online {online:?} vs batch {batch:?}"
        );
    }

    #[test]
    fn incremental_equals_batch_scan() {
        let data = noisy_steps(&[(10.0, 40), (14.0, 40)], 6, 0.7);
        let mut detector = OnlineCusum::new(Default::default()).unwrap();
        let mut fired = Vec::new();
        for &x in &data {
            if let Some(cp) = detector.push(x).unwrap() {
                fired.push(cp);
            }
        }
        assert_eq!(
            fired,
            online_changepoints(&data, Default::default()).unwrap()
        );
        assert_eq!(fired, detector.changepoints());
        assert_eq!(detector.len(), data.len());
        assert_eq!(detector.segment_start(), fired[0]);
    }

    #[test]
    fn drift_absorbs_small_shifts() {
        let data = noisy_steps(&[(10.0, 60), (10.2, 60)], 7, 1.0);
        let strict = OnlineCusumConfig {
            drift: 1.5,
            ..Default::default()
        };
        assert!(online_changepoints(&data, strict).unwrap().is_empty());
    }

    #[test]
    fn validation() {
        assert!(OnlineCusum::new(OnlineCusumConfig {
            warm_up: 1,
            ..Default::default()
        })
        .is_err());
        assert!(OnlineCusum::new(OnlineCusumConfig {
            drift: -0.1,
            ..Default::default()
        })
        .is_err());
        assert!(OnlineCusum::new(OnlineCusumConfig {
            threshold: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(OnlineCusum::new(OnlineCusumConfig {
            max_reference: 3,
            ..Default::default()
        })
        .is_err());
        let mut d = OnlineCusum::new(Default::default()).unwrap();
        assert!(d.push(f64::NAN).is_err());
        assert!(d.is_empty(), "rejected push leaves state unchanged");
    }
}
