//! Two-sample comparison: "is configuration A actually faster than B?"
//!
//! The paper's decision rule is CI non-overlap on the medians; this module
//! implements that rule plus the Mann–Whitney U test and Cliff's delta
//! effect size as distribution-free corroboration. These are the tools an
//! experimenter needs to avoid publishing a speedup that is really noise.

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::ci::nonparametric::median_ci_exact;
use crate::ci::ConfidenceInterval;
use crate::error::{check_finite, Result, StatsError};
use crate::normality::TestResult;
use crate::special::normal_cdf;

/// Verdict of a median comparison via CI overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// A's CI lies entirely below B's: A is smaller (faster, if lower is
    /// better).
    ALower,
    /// B's CI lies entirely below A's.
    BLower,
    /// The CIs overlap: no conclusion at this confidence level.
    Indistinguishable,
}

/// Full result of comparing two sample sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Median CI of the first sample.
    pub ci_a: ConfidenceInterval,
    /// Median CI of the second sample.
    pub ci_b: ConfidenceInterval,
    /// CI-overlap verdict.
    pub verdict: Verdict,
    /// Relative median difference `(median_b - median_a) / median_a`.
    pub relative_difference: f64,
    /// Mann–Whitney two-sided test result.
    pub mann_whitney: TestResult,
    /// Cliff's delta effect size in `[-1, 1]` (positive: B tends larger).
    pub cliffs_delta: f64,
}

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction and continuity correction).
///
/// The statistic reported is `U` for the first sample; the p-value tests
/// the null that the two distributions are identical against a location
/// shift.
///
/// # Errors
///
/// Returns an error on invalid input or fewer than 5 samples per side.
///
/// # Examples
///
/// ```
/// use varstats::comparison::mann_whitney_u;
///
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let b = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
/// let r = mann_whitney_u(&a, &b).unwrap();
/// assert!(r.p_value < 0.01);
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<TestResult> {
    check_finite(a)?;
    check_finite(b)?;
    let (n1, n2) = (a.len(), b.len());
    if n1 < 5 || n2 < 5 {
        return Err(StatsError::TooFewSamples {
            needed: 5,
            got: n1.min(n2),
        });
    }
    // Rank the pooled sample with mid-ranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("validated finite"));
    let n = pooled.len();
    let mut rank_sum_a = 0.0f64;
    let mut tie_correction = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        let ties = (j - i + 1) as f64;
        if ties > 1.0 {
            tie_correction += ties * ties * ties - ties;
        }
        for item in &pooled[i..=j] {
            if item.1 == 0 {
                rank_sum_a += avg_rank;
            }
        }
        i = j + 1;
    }
    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u_a = rank_sum_a - n1f * (n1f + 1.0) / 2.0;
    let mean_u = n1f * n2f / 2.0;
    let nf = n as f64;
    let var_u = n1f * n2f / 12.0 * ((nf + 1.0) - tie_correction / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    // Continuity correction toward the mean.
    let diff = u_a - mean_u;
    let corrected = if diff > 0.5 {
        diff - 0.5
    } else if diff < -0.5 {
        diff + 0.5
    } else {
        0.0
    };
    let z = corrected / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(TestResult {
        statistic: u_a,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Cliff's delta effect size: `P(a < b) - P(a > b)`, in `[-1, 1]`.
///
/// # Errors
///
/// Returns an error on invalid input.
pub fn cliffs_delta(a: &[f64], b: &[f64]) -> Result<f64> {
    check_finite(a)?;
    check_finite(b)?;
    // O(n log n) via sorting b and binary search.
    let mut sorted_b = b.to_vec();
    sorted_b.sort_by(|x, y| x.partial_cmp(y).expect("validated finite"));
    let mut wins = 0i64;
    let mut losses = 0i64;
    for &x in a {
        let below = sorted_b.partition_point(|&v| v < x) as i64;
        let below_or_eq = sorted_b.partition_point(|&v| v <= x) as i64;
        wins += below; // b values smaller than x: a > b.
        losses += sorted_b.len() as i64 - below_or_eq; // b values larger.
    }
    let total = (a.len() * b.len()) as f64;
    Ok((losses - wins) as f64 / total)
}

/// Bootstrap percentile confidence interval for the **speedup ratio**
/// `median(a) / median(b)` — the number evaluations actually quote.
///
/// Resamples both groups independently; deterministic under `seed`.
///
/// # Errors
///
/// Returns an error on invalid inputs, fewer than 5 samples per side,
/// fewer than 100 resamples, an invalid confidence level, or a zero
/// median in `b`.
///
/// # Examples
///
/// ```
/// use varstats::comparison::speedup_ci;
///
/// let slow: Vec<f64> = (0..30).map(|i| 200.0 + (i % 5) as f64).collect();
/// let fast: Vec<f64> = (0..30).map(|i| 100.0 + (i % 5) as f64).collect();
/// let ci = speedup_ci(&slow, &fast, 0.95, 500, 7).unwrap();
/// // slow/fast is about 2x.
/// assert!(ci.lower > 1.8 && ci.upper < 2.2);
/// ```
pub fn speedup_ci(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Result<ConfidenceInterval> {
    check_finite(a)?;
    check_finite(b)?;
    crate::ci::check_confidence(confidence)?;
    if a.len() < 5 || b.len() < 5 {
        return Err(StatsError::TooFewSamples {
            needed: 5,
            got: a.len().min(b.len()),
        });
    }
    if resamples < 100 {
        return Err(crate::error::invalid(
            "resamples",
            format!("need at least 100, got {resamples}"),
        ));
    }
    let med_b = crate::quantile::median(b)?;
    if med_b == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let estimate = crate::quantile::median(a)? / med_b;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ratios = Vec::with_capacity(resamples);
    let mut ra = vec![0.0; a.len()];
    let mut rb = vec![0.0; b.len()];
    for _ in 0..resamples {
        for slot in ra.iter_mut() {
            *slot = a[rng.random_range(0..a.len())];
        }
        for slot in rb.iter_mut() {
            *slot = b[rng.random_range(0..b.len())];
        }
        let mb = crate::quantile::median(&rb)?;
        if mb != 0.0 {
            ratios.push(crate::quantile::median(&ra)? / mb);
        }
    }
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite ratios"));
    let alpha = 1.0 - confidence;
    let lower = crate::quantile::quantile_sorted(
        &ratios,
        alpha / 2.0,
        crate::quantile::QuantileMethod::Linear,
    )?;
    let upper = crate::quantile::quantile_sorted(
        &ratios,
        1.0 - alpha / 2.0,
        crate::quantile::QuantileMethod::Linear,
    )?;
    Ok(ConfidenceInterval {
        estimate,
        lower,
        upper,
        confidence,
    })
}

/// Compares two sample sets with the paper's methodology: exact
/// non-parametric median CIs, overlap verdict, Mann–Whitney corroboration,
/// and Cliff's delta.
///
/// # Errors
///
/// Returns an error if either sample has fewer than 5 elements (too few
/// for the rank test and for a meaningful median CI) or is invalid.
pub fn compare_medians(a: &[f64], b: &[f64], confidence: f64) -> Result<Comparison> {
    let ra = median_ci_exact(a, confidence)?;
    let rb = median_ci_exact(b, confidence)?;
    let verdict = if ra.ci.upper < rb.ci.lower {
        Verdict::ALower
    } else if rb.ci.upper < ra.ci.lower {
        Verdict::BLower
    } else {
        Verdict::Indistinguishable
    };
    let relative_difference = if ra.ci.estimate == 0.0 {
        f64::INFINITY
    } else {
        (rb.ci.estimate - ra.ci.estimate) / ra.ci.estimate.abs()
    };
    Ok(Comparison {
        ci_a: ra.ci,
        ci_b: rb.ci,
        verdict,
        relative_difference,
        mann_whitney: mann_whitney_u(a, b)?,
        cliffs_delta: cliffs_delta(a, b)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_series(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                lo + (hi - lo) * ((state >> 11) as f64) / ((1u64 << 53) as f64)
            })
            .collect()
    }

    #[test]
    fn mann_whitney_separated_samples() {
        let a = uniform_series(1, 30, 0.0, 1.0);
        let b = uniform_series(2, 30, 10.0, 11.0);
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 1e-6);
        assert_eq!(r.statistic, 0.0); // A never beats B.
    }

    #[test]
    fn mann_whitney_identical_distributions() {
        let a = uniform_series(3, 50, 0.0, 1.0);
        let b = uniform_series(4, 50, 0.0, 1.0);
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.05, "p={}", r.p_value);
    }

    #[test]
    fn mann_whitney_handles_ties() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let b = [2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
        assert!(mann_whitney_u(&[1.0; 10], &[1.0; 10]).is_err());
    }

    #[test]
    fn mann_whitney_u_statistic_known_value() {
        // Classic hand example: A = {1,2,3}, padded to minimum size.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [6.0, 7.0, 8.0, 9.0, 10.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.statistic, 0.0);
        let r_rev = mann_whitney_u(&b, &a).unwrap();
        assert_eq!(r_rev.statistic, 25.0); // n1*n2.
    }

    #[test]
    fn cliffs_delta_extremes_and_zero() {
        let lo = [1.0, 2.0, 3.0];
        let hi = [10.0, 11.0, 12.0];
        assert_eq!(cliffs_delta(&lo, &hi).unwrap(), 1.0);
        assert_eq!(cliffs_delta(&hi, &lo).unwrap(), -1.0);
        assert_eq!(cliffs_delta(&lo, &lo).unwrap(), 0.0);
    }

    #[test]
    fn compare_medians_distinguishes_clear_gap() {
        let a = uniform_series(5, 40, 100.0, 102.0);
        let b = uniform_series(6, 40, 110.0, 112.0);
        let c = compare_medians(&a, &b, 0.95).unwrap();
        assert_eq!(c.verdict, Verdict::ALower);
        assert!(c.relative_difference > 0.05);
        assert!(c.mann_whitney.p_value < 1e-6);
        assert!(c.cliffs_delta > 0.9);
        let rev = compare_medians(&b, &a, 0.95).unwrap();
        assert_eq!(rev.verdict, Verdict::BLower);
    }

    #[test]
    fn compare_medians_overlapping_samples() {
        let a = uniform_series(7, 25, 100.0, 110.0);
        let b = uniform_series(8, 25, 100.0, 110.0);
        let c = compare_medians(&a, &b, 0.95).unwrap();
        assert_eq!(c.verdict, Verdict::Indistinguishable);
    }

    #[test]
    fn speedup_ci_brackets_the_true_ratio() {
        let slow = uniform_series(11, 40, 195.0, 205.0);
        let fast = uniform_series(12, 40, 98.0, 102.0);
        let ci = speedup_ci(&slow, &fast, 0.95, 1000, 3).unwrap();
        assert!(ci.contains(ci.estimate));
        assert!(ci.lower > 1.8 && ci.upper < 2.2, "{ci:?}");
        // Deterministic under the seed.
        let ci2 = speedup_ci(&slow, &fast, 0.95, 1000, 3).unwrap();
        assert_eq!(ci, ci2);
    }

    #[test]
    fn speedup_ci_near_one_for_identical_groups() {
        let a = uniform_series(13, 50, 99.0, 101.0);
        let b = uniform_series(14, 50, 99.0, 101.0);
        let ci = speedup_ci(&a, &b, 0.95, 500, 9).unwrap();
        assert!(ci.contains(1.0), "{ci:?}");
    }

    #[test]
    fn speedup_ci_validation() {
        let a = uniform_series(15, 50, 1.0, 2.0);
        assert!(speedup_ci(&a, &a[..3], 0.95, 500, 0).is_err());
        assert!(speedup_ci(&a, &a, 0.95, 10, 0).is_err());
        assert!(speedup_ci(&a, &a, 1.5, 500, 0).is_err());
        let zeros = vec![0.0; 20];
        assert!(speedup_ci(&a, &zeros, 0.95, 500, 0).is_err());
    }

    #[test]
    fn small_samples_cannot_conclude() {
        // With 3 samples per side an exact 95% median CI does not exist;
        // the comparison must error rather than fabricate confidence.
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!(compare_medians(&a, &b, 0.95).is_err());
    }
}
