//! Parametric (normal-theory) confidence intervals for the mean.
//!
//! These are the intervals that classical methodology (Jain's textbook)
//! prescribes. They assume the sampling distribution of the mean is
//! normal — an assumption the paper shows frequently fails for systems
//! benchmarks. They are implemented both as the baseline to compare
//! against and because they remain correct for genuinely normal data.

use crate::ci::{check_confidence, ConfidenceInterval};
use crate::descriptive::Moments;
use crate::error::{check_finite, Result, StatsError};
use crate::special::{normal_quantile, student_t_quantile};

/// Confidence interval for the mean using Student's t distribution
/// (unknown population variance — the common case).
///
/// # Errors
///
/// Returns an error on empty/non-finite input, fewer than 2 samples, or an
/// invalid confidence level.
///
/// # Examples
///
/// ```
/// use varstats::ci::parametric::mean_ci_t;
///
/// let data = [9.8, 10.1, 10.0, 9.9, 10.2];
/// let ci = mean_ci_t(&data, 0.95).unwrap();
/// assert!(ci.lower < 10.0 && 10.0 < ci.upper);
/// ```
pub fn mean_ci_t(data: &[f64], confidence: f64) -> Result<ConfidenceInterval> {
    check_finite(data)?;
    check_confidence(confidence)?;
    if data.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: data.len(),
        });
    }
    let m: Moments = data.iter().copied().collect();
    let df = (data.len() - 1) as f64;
    let t = student_t_quantile(0.5 + confidence / 2.0, df)?;
    let half = t * m.std_error();
    Ok(ConfidenceInterval {
        estimate: m.mean(),
        lower: m.mean() - half,
        upper: m.mean() + half,
        confidence,
    })
}

/// Confidence interval for the mean using the normal distribution with a
/// known population standard deviation `sigma`.
///
/// # Errors
///
/// Returns an error on empty/non-finite input, `sigma <= 0`, or an invalid
/// confidence level.
pub fn mean_ci_z(data: &[f64], sigma: f64, confidence: f64) -> Result<ConfidenceInterval> {
    check_finite(data)?;
    check_confidence(confidence)?;
    if sigma <= 0.0 {
        return Err(crate::error::invalid(
            "sigma",
            format!("must be > 0, got {sigma}"),
        ));
    }
    let m: Moments = data.iter().copied().collect();
    let z = normal_quantile(0.5 + confidence / 2.0)?;
    let half = z * sigma / (data.len() as f64).sqrt();
    Ok(ConfidenceInterval {
        estimate: m.mean(),
        lower: m.mean() - half,
        upper: m.mean() + half,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_interval_matches_hand_computation() {
        // n = 5, mean = 10, s computed by hand; t_{0.975, 4} = 2.7764.
        let data = [9.0, 10.0, 10.0, 10.0, 11.0];
        let ci = mean_ci_t(&data, 0.95).unwrap();
        let s = (2.0f64 / 4.0).sqrt();
        let half = 2.776_445 * s / 5.0f64.sqrt();
        assert!((ci.estimate - 10.0).abs() < 1e-12);
        assert!((ci.upper - (10.0 + half)).abs() < 1e-4);
        assert!((ci.lower - (10.0 - half)).abs() < 1e-4);
    }

    #[test]
    fn higher_confidence_is_wider() {
        let data: Vec<f64> = (0..30).map(|i| (i as f64).sin() + 5.0).collect();
        let c90 = mean_ci_t(&data, 0.90).unwrap();
        let c99 = mean_ci_t(&data, 0.99).unwrap();
        assert!(c99.width() > c90.width());
    }

    #[test]
    fn more_samples_is_narrower() {
        let small: Vec<f64> = (0..10).map(|i| (i % 3) as f64 + 10.0).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 3) as f64 + 10.0).collect();
        let cs = mean_ci_t(&small, 0.95).unwrap();
        let cl = mean_ci_t(&large, 0.95).unwrap();
        assert!(cl.width() < cs.width());
    }

    #[test]
    fn z_interval_known_sigma() {
        let data = vec![10.0; 100];
        let ci = mean_ci_z(&data, 1.0, 0.95).unwrap();
        // Half-width = 1.96 * 1 / 10.
        assert!((ci.width() / 2.0 - 0.196).abs() < 1e-3);
        assert!(mean_ci_z(&data, 0.0, 0.95).is_err());
        assert!(mean_ci_z(&data, -1.0, 0.95).is_err());
    }

    #[test]
    fn input_validation() {
        assert!(mean_ci_t(&[], 0.95).is_err());
        assert!(mean_ci_t(&[1.0], 0.95).is_err());
        assert!(mean_ci_t(&[1.0, 2.0], 1.5).is_err());
        assert!(mean_ci_t(&[1.0, f64::NAN], 0.95).is_err());
    }

    #[test]
    fn coverage_on_normal_data_is_close_to_nominal() {
        // Empirical coverage check with a deterministic LCG-based normal
        // generator (Box-Muller).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut hits = 0;
        let trials = 400;
        for _ in 0..trials {
            let data: Vec<f64> = (0..20)
                .map(|_| {
                    let u1: f64 = uniform().max(1e-12);
                    let u2: f64 = uniform();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() + 100.0
                })
                .collect();
            let ci = mean_ci_t(&data, 0.95).unwrap();
            if ci.contains(100.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(
            (0.90..=0.99).contains(&coverage),
            "coverage {coverage} out of expected range"
        );
    }
}
