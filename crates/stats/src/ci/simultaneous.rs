//! Simultaneous (family-wise) confidence intervals.
//!
//! An evaluation that prints eleven benchmark CIs at 95% each will see a
//! spurious exclusion somewhere in more than a third of papers. When the
//! conclusion rests on *all* intervals at once ("no benchmark regressed"),
//! the family needs a corrected per-interval level. Bonferroni is crude
//! but assumption-free — in keeping with the rest of the methodology.

use serde::{Deserialize, Serialize};

use crate::ci::check_confidence;
use crate::ci::nonparametric::{quantile_ci_exact, QuantileCi};
use crate::error::{invalid, Result};

/// The per-interval confidence level needed so `k` intervals are
/// simultaneously valid at `family_confidence` (Bonferroni).
///
/// # Errors
///
/// Returns an error for `k == 0` or an invalid family confidence.
///
/// # Examples
///
/// ```
/// use varstats::ci::simultaneous::bonferroni_level;
///
/// // Eleven intervals at family level 95% each need ~99.55%.
/// let level = bonferroni_level(11, 0.95).unwrap();
/// assert!((level - 0.9955).abs() < 1e-4);
/// ```
pub fn bonferroni_level(k: usize, family_confidence: f64) -> Result<f64> {
    if k == 0 {
        return Err(invalid("k", "need at least one interval"));
    }
    check_confidence(family_confidence)?;
    let alpha = 1.0 - family_confidence;
    Ok(1.0 - alpha / k as f64)
}

/// A family of simultaneous median CIs, one per group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimultaneousCis {
    /// Per-group intervals, in input order (each at the corrected level).
    pub intervals: Vec<QuantileCi>,
    /// The family-wise confidence the set jointly provides.
    pub family_confidence: f64,
    /// The corrected per-interval level used.
    pub per_interval_confidence: f64,
}

/// Computes exact median CIs for every group such that all of them hold
/// simultaneously at `family_confidence`.
///
/// # Errors
///
/// Returns an error for an empty group list, an invalid confidence, or
/// any group too small for an exact CI at the corrected level.
pub fn simultaneous_median_cis(
    groups: &[&[f64]],
    family_confidence: f64,
) -> Result<SimultaneousCis> {
    let level = bonferroni_level(groups.len(), family_confidence)?;
    let intervals = groups
        .iter()
        .map(|g| quantile_ci_exact(g, 0.5, level))
        .collect::<Result<Vec<_>>>()?;
    Ok(SimultaneousCis {
        intervals,
        family_confidence,
        per_interval_confidence: level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_levels() {
        assert!((bonferroni_level(1, 0.95).unwrap() - 0.95).abs() < 1e-12);
        assert!((bonferroni_level(10, 0.95).unwrap() - 0.995).abs() < 1e-12);
        assert!(bonferroni_level(0, 0.95).is_err());
        assert!(bonferroni_level(5, 1.0).is_err());
    }

    #[test]
    fn corrected_intervals_are_wider() {
        let data: Vec<f64> = (1..=200).map(f64::from).collect();
        let single = quantile_ci_exact(&data, 0.5, 0.95).unwrap();
        let family = simultaneous_median_cis(&[&data, &data, &data, &data, &data], 0.95).unwrap();
        for ci in &family.intervals {
            assert!(ci.ci.width() >= single.ci.width());
        }
        assert!(family.per_interval_confidence > 0.98);
    }

    #[test]
    fn family_coverage_is_at_least_nominal() {
        // Empirical: 5 groups of uniform(0, 2) data; ALL five intervals
        // must cover the true median (1.0) at least ~95% of the time.
        let mut state = 11u64;
        let mut uniform = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            2.0 * ((z >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let trials = 150;
        let mut all_cover = 0;
        for _ in 0..trials {
            let groups: Vec<Vec<f64>> = (0..5)
                .map(|_| (0..60).map(|_| uniform()).collect())
                .collect();
            let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
            let family = simultaneous_median_cis(&refs, 0.95).unwrap();
            if family.intervals.iter().all(|ci| ci.ci.contains(1.0)) {
                all_cover += 1;
            }
        }
        let coverage = all_cover as f64 / trials as f64;
        assert!(coverage >= 0.92, "family coverage {coverage}");
    }

    #[test]
    fn too_small_groups_error_at_corrected_level() {
        // 10 samples support a single 95% median CI but not a 99.9%-level
        // one (needs 11); the family must refuse rather than under-cover.
        let small: Vec<f64> = (1..=10).map(f64::from).collect();
        let groups: Vec<&[f64]> = vec![&small; 50];
        let result = simultaneous_median_cis(&groups, 0.95);
        // Exact CI degrades to [min, max] with achieved < level; the
        // implementation returns Ok but reports achieved confidence —
        // verify the caller can detect under-coverage.
        if let Ok(family) = result {
            assert!(family
                .intervals
                .iter()
                .any(|ci| ci.achieved_confidence < family.per_interval_confidence));
        }
    }
}
