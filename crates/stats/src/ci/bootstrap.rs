//! Hand-rolled bootstrap confidence intervals.
//!
//! The bootstrap resamples the data with replacement, recomputes the
//! statistic on each resample, and derives an interval from the resulting
//! empirical distribution. It works for any statistic (mean, median, p99,
//! CoV, ...) without distributional assumptions, at the cost of `B`
//! recomputations. Three interval flavors are implemented:
//!
//! * **Percentile** — quantiles of the bootstrap distribution.
//! * **Basic** — reflected percentile (`2 theta - q_hi, 2 theta - q_lo`).
//! * **BCa** — bias-corrected and accelerated; adjusts the percentile
//!   levels using the bootstrap bias `z0` and the jackknife acceleration.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::ci::{check_confidence, ConfidenceInterval};
use crate::error::{check_finite, invalid, Result, StatsError};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::special::{normal_cdf, normal_quantile};

/// Which bootstrap interval construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BootstrapKind {
    /// Percentile interval.
    Percentile,
    /// Basic (reflected percentile) interval.
    Basic,
    /// Bias-corrected and accelerated interval.
    #[default]
    Bca,
}

/// A seeded bootstrap engine.
///
/// # Examples
///
/// ```
/// use varstats::ci::bootstrap::{Bootstrap, BootstrapKind};
/// use varstats::quantile::median;
///
/// let data: Vec<f64> = (1..=50).map(f64::from).collect();
/// let boot = Bootstrap::new(500, 7);
/// let ci = boot
///     .ci(&data, |xs| median(xs).unwrap(), 0.95, BootstrapKind::Percentile)
///     .unwrap();
/// assert!(ci.contains(25.5));
/// ```
#[derive(Debug, Clone)]
pub struct Bootstrap {
    resamples: usize,
    seed: u64,
}

impl Bootstrap {
    /// Creates an engine that draws `resamples` bootstrap replicates using a
    /// deterministic RNG seeded with `seed`.
    pub fn new(resamples: usize, seed: u64) -> Self {
        Self { resamples, seed }
    }

    /// Number of bootstrap replicates drawn per call.
    pub fn resamples(&self) -> usize {
        self.resamples
    }

    /// Computes the bootstrap distribution of `statistic` (sorted).
    ///
    /// # Errors
    ///
    /// Returns an error on empty/non-finite input, too few resamples, or if
    /// the statistic produces a non-finite value.
    pub fn distribution<F>(&self, data: &[f64], statistic: F) -> Result<Vec<f64>>
    where
        F: Fn(&[f64]) -> f64,
    {
        check_finite(data)?;
        if self.resamples < 50 {
            return Err(invalid(
                "resamples",
                format!(
                    "need at least 50 bootstrap resamples, got {}",
                    self.resamples
                ),
            ));
        }
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut replicate = vec![0.0; n];
        let mut thetas = Vec::with_capacity(self.resamples);
        for b in 0..self.resamples {
            for slot in replicate.iter_mut() {
                *slot = data[rng.random_range(0..n)];
            }
            let theta = statistic(&replicate);
            if !theta.is_finite() {
                return Err(StatsError::NonFiniteValue { index: b });
            }
            thetas.push(theta);
        }
        thetas.sort_by(|a, b| a.partial_cmp(b).expect("checked finite"));
        Ok(thetas)
    }

    /// Bootstrap confidence interval for an arbitrary statistic.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid input, too few samples (fewer than 3),
    /// or an invalid confidence level.
    pub fn ci<F>(
        &self,
        data: &[f64],
        statistic: F,
        confidence: f64,
        kind: BootstrapKind,
    ) -> Result<ConfidenceInterval>
    where
        F: Fn(&[f64]) -> f64,
    {
        check_confidence(confidence)?;
        check_finite(data)?;
        if data.len() < 3 {
            return Err(StatsError::TooFewSamples {
                needed: 3,
                got: data.len(),
            });
        }
        let theta_hat = statistic(data);
        if !theta_hat.is_finite() {
            return Err(StatsError::NonFiniteValue { index: 0 });
        }
        let thetas = self.distribution(data, &statistic)?;
        let alpha = 1.0 - confidence;
        let (lower, upper) = match kind {
            BootstrapKind::Percentile => {
                let lo = quantile_sorted(&thetas, alpha / 2.0, QuantileMethod::Linear)?;
                let hi = quantile_sorted(&thetas, 1.0 - alpha / 2.0, QuantileMethod::Linear)?;
                (lo, hi)
            }
            BootstrapKind::Basic => {
                let lo = quantile_sorted(&thetas, alpha / 2.0, QuantileMethod::Linear)?;
                let hi = quantile_sorted(&thetas, 1.0 - alpha / 2.0, QuantileMethod::Linear)?;
                (2.0 * theta_hat - hi, 2.0 * theta_hat - lo)
            }
            BootstrapKind::Bca => {
                let b = thetas.len() as f64;
                // Degenerate bootstrap distribution: the statistic did not
                // vary, so the interval collapses to a point.
                if thetas[0] == thetas[thetas.len() - 1] {
                    (theta_hat, theta_hat)
                } else {
                    // Bias correction from the fraction of replicates below
                    // the observed statistic (clamped away from 0 and 1).
                    let below = thetas.iter().filter(|&&t| t < theta_hat).count() as f64;
                    let frac = (below / b).clamp(0.5 / b, 1.0 - 0.5 / b);
                    let z0 = normal_quantile(frac)?;
                    // Jackknife acceleration.
                    let a = jackknife_acceleration(data, &statistic)?;
                    let z_lo = normal_quantile(alpha / 2.0)?;
                    let z_hi = normal_quantile(1.0 - alpha / 2.0)?;
                    let adj = |z: f64| -> f64 {
                        let num = z0 + z;
                        normal_cdf(z0 + num / (1.0 - a * num))
                    };
                    let a1 = adj(z_lo).clamp(1.0 / b, 1.0 - 1.0 / b);
                    let a2 = adj(z_hi).clamp(1.0 / b, 1.0 - 1.0 / b);
                    let lo = quantile_sorted(&thetas, a1.min(a2), QuantileMethod::Linear)?;
                    let hi = quantile_sorted(&thetas, a1.max(a2), QuantileMethod::Linear)?;
                    (lo, hi)
                }
            }
        };
        Ok(ConfidenceInterval {
            estimate: theta_hat,
            lower: lower.min(upper),
            upper: lower.max(upper),
            confidence,
        })
    }
}

/// Jackknife acceleration constant for the BCa interval.
fn jackknife_acceleration<F>(data: &[f64], statistic: &F) -> Result<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let n = data.len();
    let mut loo = Vec::with_capacity(n);
    let mut buf = Vec::with_capacity(n - 1);
    for i in 0..n {
        buf.clear();
        buf.extend_from_slice(&data[..i]);
        buf.extend_from_slice(&data[i + 1..]);
        let t = statistic(&buf);
        if !t.is_finite() {
            return Err(StatsError::NonFiniteValue { index: i });
        }
        loo.push(t);
    }
    let mean = loo.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for &t in &loo {
        let d = mean - t;
        num += d * d * d;
        den += d * d;
    }
    if den == 0.0 {
        Ok(0.0)
    } else {
        Ok(num / (6.0 * den.powf(1.5)))
    }
}

/// Convenience: bootstrap BCa interval for the median.
///
/// # Errors
///
/// Same as [`Bootstrap::ci`].
pub fn median_ci_bootstrap(
    data: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Result<ConfidenceInterval> {
    Bootstrap::new(resamples, seed).ci(
        data,
        |xs| crate::quantile::median(xs).expect("bootstrap replicate is non-empty"),
        confidence,
        BootstrapKind::Bca,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;

    fn data_1_to_100() -> Vec<f64> {
        (1..=100).map(f64::from).collect()
    }

    #[test]
    fn bootstrap_is_deterministic_given_seed() {
        let data = data_1_to_100();
        let b = Bootstrap::new(200, 99);
        let c1 = b
            .ci(&data, |x| mean(x).unwrap(), 0.95, BootstrapKind::Percentile)
            .unwrap();
        let c2 = b
            .ci(&data, |x| mean(x).unwrap(), 0.95, BootstrapKind::Percentile)
            .unwrap();
        assert_eq!(c1, c2);
        let c3 = Bootstrap::new(200, 100)
            .ci(&data, |x| mean(x).unwrap(), 0.95, BootstrapKind::Percentile)
            .unwrap();
        assert_ne!(c1.lower, c3.lower);
    }

    #[test]
    fn all_kinds_cover_the_point_estimate_for_symmetric_data() {
        let data = data_1_to_100();
        for kind in [
            BootstrapKind::Percentile,
            BootstrapKind::Basic,
            BootstrapKind::Bca,
        ] {
            let ci = Bootstrap::new(400, 5)
                .ci(&data, |x| mean(x).unwrap(), 0.95, kind)
                .unwrap();
            assert!(
                ci.contains(ci.estimate),
                "{kind:?}: {} not in [{}, {}]",
                ci.estimate,
                ci.lower,
                ci.upper
            );
            assert!(ci.contains(50.5), "{kind:?} should cover the true mean");
        }
    }

    #[test]
    fn bootstrap_median_interval_is_reasonable() {
        let data = data_1_to_100();
        let ci = median_ci_bootstrap(&data, 0.95, 500, 3).unwrap();
        assert!(ci.contains(50.5));
        assert!(ci.width() > 1.0 && ci.width() < 60.0);
    }

    #[test]
    fn degenerate_constant_data_collapses() {
        let data = vec![4.2; 20];
        let ci = Bootstrap::new(100, 1)
            .ci(&data, |x| mean(x).unwrap(), 0.95, BootstrapKind::Bca)
            .unwrap();
        assert_eq!(ci.lower, ci.upper);
        assert!((ci.lower - 4.2).abs() < 1e-9);
    }

    #[test]
    fn validates_inputs() {
        let b = Bootstrap::new(100, 0);
        assert!(b
            .ci(&[], |x| x.len() as f64, 0.95, BootstrapKind::Percentile)
            .is_err());
        assert!(b
            .ci(&[1.0, 2.0], |_| 0.0, 0.95, BootstrapKind::Percentile)
            .is_err());
        assert!(Bootstrap::new(10, 0)
            .distribution(&[1.0, 2.0, 3.0], |x| x[0])
            .is_err());
        assert!(b
            .ci(&[1.0, 2.0, 3.0], |_| f64::NAN, 0.95, BootstrapKind::Bca)
            .is_err());
    }

    #[test]
    fn coverage_for_the_mean_on_skewed_data() {
        // Empirical coverage of the BCa interval for the mean of a skewed
        // (exponential-ish) distribution should be near nominal, and at
        // least not catastrophically low.
        let mut state = 7u64;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut hits = 0;
        let trials = 120;
        for t in 0..trials {
            let data: Vec<f64> = (0..40)
                .map(|_| -uniform().max(1e-12).ln()) // Exp(1), true mean 1.
                .collect();
            let ci = Bootstrap::new(300, t as u64)
                .ci(&data, |x| mean(x).unwrap(), 0.95, BootstrapKind::Bca)
                .unwrap();
            if ci.contains(1.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage >= 0.85, "coverage {coverage} too low");
    }

    #[test]
    fn basic_and_percentile_are_reflections() {
        let data = data_1_to_100();
        let b = Bootstrap::new(300, 11);
        let stat = |x: &[f64]| mean(x).unwrap();
        let pct = b.ci(&data, stat, 0.95, BootstrapKind::Percentile).unwrap();
        let bas = b.ci(&data, stat, 0.95, BootstrapKind::Basic).unwrap();
        let theta = mean(&data).unwrap();
        assert!((bas.lower - (2.0 * theta - pct.upper)).abs() < 1e-9);
        assert!((bas.upper - (2.0 * theta - pct.lower)).abs() < 1e-9);
    }

    #[test]
    fn works_for_tail_quantile_statistic() {
        let data: Vec<f64> = (1..=500).map(f64::from).collect();
        let ci = Bootstrap::new(300, 2)
            .ci(
                &data,
                |x| crate::quantile::quantile(x, 0.99, QuantileMethod::Linear).unwrap(),
                0.95,
                BootstrapKind::Percentile,
            )
            .unwrap();
        assert!(ci.lower >= 450.0 && ci.upper <= 500.0, "{ci:?}");
    }
}
