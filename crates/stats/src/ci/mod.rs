//! Confidence intervals: parametric, non-parametric, and bootstrap.
//!
//! The paper's central methodological point is that benchmark data is
//! usually not normal, so mean-plus-t-interval summaries mislead; the
//! median with an **order-statistic (non-parametric) confidence interval**
//! should be the default. All three families are provided so they can be
//! compared head-to-head (experiment F7/T3).

pub mod bootstrap;
pub mod nonparametric;
pub mod parametric;
pub mod simultaneous;

use serde::{Deserialize, Serialize};

use crate::error::{invalid, Result};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate the interval is centered on (mean, median, ...).
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Interval width `upper - lower`.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Half-width relative to the point estimate: `width / (2 |estimate|)`.
    ///
    /// This is the "error" the paper's ±1% criterion refers to. Returns
    /// infinity when the estimate is zero.
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            self.width() / (2.0 * self.estimate.abs())
        }
    }

    /// Largest relative distance from the estimate to either bound.
    pub fn relative_bound_error(&self) -> f64 {
        if self.estimate == 0.0 {
            return f64::INFINITY;
        }
        let lo = (self.estimate - self.lower).abs();
        let hi = (self.upper - self.estimate).abs();
        lo.max(hi) / self.estimate.abs()
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Whether two intervals overlap.
    ///
    /// Non-overlap is the paper's criterion for concluding one
    /// configuration really is faster than another.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

/// Validates a confidence level, returning it on success.
///
/// # Errors
///
/// Returns an error unless `0 < confidence < 1`.
pub fn check_confidence(confidence: f64) -> Result<f64> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(invalid(
            "confidence",
            format!("must be in (0, 1), got {confidence}"),
        ));
    }
    Ok(confidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(lo: f64, est: f64, hi: f64) -> ConfidenceInterval {
        ConfidenceInterval {
            estimate: est,
            lower: lo,
            upper: hi,
            confidence: 0.95,
        }
    }

    #[test]
    fn width_and_relative_errors() {
        let c = ci(98.0, 100.0, 104.0);
        assert_eq!(c.width(), 6.0);
        assert!((c.relative_half_width() - 0.03).abs() < 1e-12);
        assert!((c.relative_bound_error() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn zero_estimate_yields_infinite_relative_error() {
        let c = ci(-1.0, 0.0, 1.0);
        assert!(c.relative_half_width().is_infinite());
        assert!(c.relative_bound_error().is_infinite());
    }

    #[test]
    fn contains_is_inclusive() {
        let c = ci(1.0, 2.0, 3.0);
        assert!(c.contains(1.0));
        assert!(c.contains(3.0));
        assert!(c.contains(2.5));
        assert!(!c.contains(0.999));
        assert!(!c.contains(3.001));
    }

    #[test]
    fn overlap_is_symmetric_and_touching_counts() {
        let a = ci(1.0, 2.0, 3.0);
        let b = ci(3.0, 4.0, 5.0);
        let c = ci(3.5, 4.0, 5.0);
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }

    #[test]
    fn check_confidence_domain() {
        assert!(check_confidence(0.95).is_ok());
        assert!(check_confidence(0.0).is_err());
        assert!(check_confidence(1.0).is_err());
        assert!(check_confidence(f64::NAN).is_err());
    }
}
