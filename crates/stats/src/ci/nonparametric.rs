//! Non-parametric (order-statistic) confidence intervals for quantiles.
//!
//! These intervals make no distributional assumption: the CI for the
//! `q`-quantile is a pair of order statistics `[x_(l), x_(u)]` whose ranks
//! are chosen so the binomial probability that the true quantile lies
//! between them meets the confidence level. Two variants are provided:
//!
//! * [`quantile_ci_exact`] — exact binomial ranks (recommended; achieved
//!   coverage is reported because it is discrete and ≥ nominal).
//! * [`median_ci_approx`] / [`quantile_ci_approx`] — the normal
//!   approximation to the binomial. For the median this is exactly the
//!   formula the paper (and Le Boudec's textbook) prints:
//!   `lower = floor((n - z*sqrt(n)) / 2)`,
//!   `upper = ceil(1 + (n + z*sqrt(n)) / 2)` (1-based ranks).

use serde::{Deserialize, Serialize};

use crate::ci::{check_confidence, ConfidenceInterval};
use crate::error::{check_finite, invalid, Result, StatsError};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::special::{binomial_cdf, normal_quantile};

/// A quantile confidence interval with its order-statistic ranks and the
/// coverage actually achieved (exact method only; the approximation reports
/// the nominal level).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileCi {
    /// The interval itself.
    pub ci: ConfidenceInterval,
    /// 1-based rank of the lower order statistic.
    pub lower_rank: usize,
    /// 1-based rank of the upper order statistic.
    pub upper_rank: usize,
    /// Coverage probability actually achieved by the chosen ranks.
    pub achieved_confidence: f64,
}

fn sort_copy(data: &[f64]) -> Result<Vec<f64>> {
    check_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    Ok(sorted)
}

fn check_q(q: f64) -> Result<()> {
    if !(q > 0.0 && q < 1.0) {
        return Err(invalid("q", format!("must be in (0, 1), got {q}")));
    }
    Ok(())
}

/// Exact order-statistic confidence interval for the `q`-quantile.
///
/// Ranks are the equal-tailed binomial choice: the largest `l` with
/// `P(B <= l - 1) <= alpha/2` and the smallest `u` with
/// `P(B <= u - 1) >= 1 - alpha/2`, for `B ~ Binomial(n, q)`. The achieved
/// coverage `P(l <= B < u)` is reported and is always `>=` the nominal
/// level when the ranks exist; when `n` is too small for the requested
/// level the interval degrades to `[min, max]` and the achieved coverage
/// reported may be below nominal.
///
/// # Errors
///
/// Returns an error on invalid input, `q` outside `(0, 1)`, an invalid
/// confidence level, or fewer than 3 samples.
///
/// # Examples
///
/// ```
/// use varstats::ci::nonparametric::quantile_ci_exact;
///
/// let data: Vec<f64> = (1..=100).map(f64::from).collect();
/// let r = quantile_ci_exact(&data, 0.5, 0.95).unwrap();
/// assert_eq!((r.lower_rank, r.upper_rank), (40, 61));
/// assert!(r.ci.contains(50.5));
/// assert!(r.achieved_confidence >= 0.95);
/// ```
pub fn quantile_ci_exact(data: &[f64], q: f64, confidence: f64) -> Result<QuantileCi> {
    check_q(q)?;
    check_confidence(confidence)?;
    let sorted = sort_copy(data)?;
    let n = sorted.len();
    if n < 3 {
        return Err(StatsError::TooFewSamples { needed: 3, got: n });
    }
    let alpha = 1.0 - confidence;
    let n_u = n as u64;

    // Largest l in [1, n] with P(B <= l-1) <= alpha/2.
    let mut lower_rank = 1usize;
    for l in (1..=n).rev() {
        if binomial_cdf(l as i64 - 1, n_u, q)? <= alpha / 2.0 {
            lower_rank = l;
            break;
        }
    }
    // Smallest u in [1, n] with P(B <= u-1) >= 1 - alpha/2.
    let mut upper_rank = n;
    for u in 1..=n {
        if binomial_cdf(u as i64 - 1, n_u, q)? >= 1.0 - alpha / 2.0 {
            upper_rank = u;
            break;
        }
    }
    if upper_rank < lower_rank {
        (lower_rank, upper_rank) = (1, n);
    }
    let achieved =
        binomial_cdf(upper_rank as i64 - 1, n_u, q)? - binomial_cdf(lower_rank as i64 - 1, n_u, q)?;
    let estimate = quantile_sorted(&sorted, q, QuantileMethod::Linear)?;
    Ok(QuantileCi {
        ci: ConfidenceInterval {
            estimate,
            lower: sorted[lower_rank - 1],
            upper: sorted[upper_rank - 1],
            confidence,
        },
        lower_rank,
        upper_rank,
        achieved_confidence: achieved,
    })
}

/// Normal-approximation order-statistic CI for an arbitrary quantile.
///
/// Ranks: `l = floor(n q - z sqrt(n q (1-q)))` and
/// `u = 1 + ceil(n q + z sqrt(n q (1-q)))`, clamped to `[1, n]`. For
/// `q = 0.5` this is exactly the paper's median formula.
///
/// # Errors
///
/// Returns an error on invalid input, `q` outside `(0, 1)`, an invalid
/// confidence level, or fewer than 3 samples.
pub fn quantile_ci_approx(data: &[f64], q: f64, confidence: f64) -> Result<QuantileCi> {
    check_q(q)?;
    check_confidence(confidence)?;
    let sorted = sort_copy(data)?;
    let n = sorted.len();
    if n < 3 {
        return Err(StatsError::TooFewSamples { needed: 3, got: n });
    }
    let z = normal_quantile(0.5 + confidence / 2.0)?;
    let nf = n as f64;
    let center = nf * q;
    let spread = z * (nf * q * (1.0 - q)).sqrt();
    let lower_rank = ((center - spread).floor() as i64).clamp(1, n as i64) as usize;
    let upper_rank = ((1.0 + (center + spread).ceil()) as i64).clamp(1, n as i64) as usize;
    let estimate = quantile_sorted(&sorted, q, QuantileMethod::Linear)?;
    Ok(QuantileCi {
        ci: ConfidenceInterval {
            estimate,
            lower: sorted[lower_rank - 1],
            upper: sorted[upper_rank - 1],
            confidence,
        },
        lower_rank,
        upper_rank,
        achieved_confidence: confidence,
    })
}

/// The paper's median confidence interval (normal approximation):
/// `lower = floor((n - z sqrt(n)) / 2)`, `upper = ceil(1 + (n + z sqrt(n)) / 2)`.
///
/// # Errors
///
/// Returns an error on invalid input, an invalid confidence level, or fewer
/// than 3 samples.
///
/// # Examples
///
/// ```
/// use varstats::ci::nonparametric::median_ci_approx;
///
/// let data: Vec<f64> = (1..=50).map(f64::from).collect();
/// let r = median_ci_approx(&data, 0.95).unwrap();
/// assert!(r.ci.contains(25.5));
/// ```
pub fn median_ci_approx(data: &[f64], confidence: f64) -> Result<QuantileCi> {
    quantile_ci_approx(data, 0.5, confidence)
}

/// Exact median confidence interval (binomial order-statistic ranks).
///
/// # Errors
///
/// Same as [`quantile_ci_exact`].
pub fn median_ci_exact(data: &[f64], confidence: f64) -> Result<QuantileCi> {
    quantile_ci_exact(data, 0.5, confidence)
}

/// Median CI with automatic method selection: exact binomial ranks up to
/// `n = 1000`, the normal approximation beyond (where the two methods
/// differ by at most one rank and the exact search's `O(n^2)` binomial
/// scans stop being worth it). This is the variant the telemetry layer
/// uses for its self-measurement reports.
///
/// # Errors
///
/// Same as [`quantile_ci_exact`] / [`quantile_ci_approx`].
///
/// # Examples
///
/// ```
/// use varstats::ci::nonparametric::{median_ci_auto, median_ci_exact};
///
/// let data: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(
///     median_ci_auto(&data, 0.95).unwrap(),
///     median_ci_exact(&data, 0.95).unwrap()
/// );
/// ```
pub fn median_ci_auto(data: &[f64], confidence: f64) -> Result<QuantileCi> {
    if data.len() <= 1000 {
        median_ci_exact(data, confidence)
    } else {
        median_ci_approx(data, confidence)
    }
}

/// Distribution-free **prediction interval** for the next measurement:
/// `[x_(l), x_(u)]` with `l = floor((n+1) * alpha/2)` and
/// `u = ceil((n+1) * (1 - alpha/2))` — the interval a future observation
/// falls into with the stated probability, assuming exchangeability.
///
/// Prediction intervals answer a different question than CIs: not "where
/// is the median" but "what will the next run look like" — the right
/// object for SLO-style statements.
///
/// # Errors
///
/// Returns an error on invalid input, an invalid confidence level, or a
/// sample too small to support the level (`n + 1 < 2 / alpha`).
///
/// # Examples
///
/// ```
/// use varstats::ci::nonparametric::prediction_interval;
///
/// let runs: Vec<f64> = (1..=99).map(f64::from).collect();
/// let pi = prediction_interval(&runs, 0.90).unwrap();
/// assert!(pi.lower <= 5.0 && pi.upper >= 95.0);
/// ```
pub fn prediction_interval(data: &[f64], confidence: f64) -> Result<ConfidenceInterval> {
    check_confidence(confidence)?;
    let sorted = sort_copy(data)?;
    let n = sorted.len();
    let alpha = 1.0 - confidence;
    // Need (n+1) * alpha/2 >= 1 for both tails to exist.
    if ((n + 1) as f64) * alpha / 2.0 < 1.0 {
        return Err(StatsError::TooFewSamples {
            needed: (2.0 / alpha).ceil() as usize,
            got: n,
        });
    }
    let l = (((n + 1) as f64) * alpha / 2.0).floor() as usize;
    let u = (((n + 1) as f64) * (1.0 - alpha / 2.0)).ceil() as usize;
    let lower_rank = l.clamp(1, n);
    let upper_rank = u.clamp(1, n);
    let estimate = quantile_sorted(&sorted, 0.5, QuantileMethod::Linear)?;
    Ok(ConfidenceInterval {
        estimate,
        lower: sorted[lower_rank - 1],
        upper: sorted[upper_rank - 1],
        confidence,
    })
}

/// Minimum sample size for which an exact two-sided order-statistic CI of
/// the `q`-quantile at `confidence` exists at all (i.e. `[x_(1), x_(n)]`
/// reaches the level).
///
/// Useful to explain why CONFIRM refuses subsets smaller than ~10 for the
/// median at 95%.
///
/// # Errors
///
/// Returns an error for invalid `q` or confidence.
pub fn min_samples_for_quantile_ci(q: f64, confidence: f64) -> Result<usize> {
    check_q(q)?;
    check_confidence(confidence)?;
    // Coverage of [x_(1), x_(n)] is 1 - q^n - (1-q)^n; find smallest n
    // reaching the level.
    for n in 2..100_000usize {
        let cover = 1.0 - q.powi(n as i32) - (1.0 - q).powi(n as i32);
        if cover >= confidence {
            return Ok(n);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "min_samples_for_quantile_ci",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_median_formula_ranks_n100() {
        // n = 100, z = 1.96: lower = floor((100 - 19.6)/2) = 40,
        // upper = ceil(1 + 119.6/2) = 61.
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        let r = median_ci_approx(&data, 0.95).unwrap();
        assert_eq!(r.lower_rank, 40);
        assert_eq!(r.upper_rank, 61);
        assert_eq!(r.ci.lower, 40.0);
        assert_eq!(r.ci.upper, 61.0);
        assert_eq!(r.ci.estimate, 50.5);
    }

    #[test]
    fn exact_and_approx_agree_for_moderate_n() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        let exact = median_ci_exact(&data, 0.95).unwrap();
        let approx = median_ci_approx(&data, 0.95).unwrap();
        assert_eq!(exact.lower_rank, 40);
        assert_eq!(exact.upper_rank, 61);
        assert!(exact.achieved_confidence >= 0.95);
        assert!((exact.lower_rank as i64 - approx.lower_rank as i64).abs() <= 1);
        assert!((exact.upper_rank as i64 - approx.upper_rank as i64).abs() <= 1);
    }

    #[test]
    fn median_always_inside_its_ci() {
        // The sample median must lie within the CI bounds (paper's sanity
        // criterion).
        for n in [5usize, 10, 23, 50, 101, 500] {
            let data: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
            for f in [median_ci_exact, median_ci_approx] {
                let r = f(&data, 0.95).unwrap();
                assert!(
                    r.ci.contains(r.ci.estimate),
                    "n={n}: median {} outside [{}, {}]",
                    r.ci.estimate,
                    r.ci.lower,
                    r.ci.upper
                );
            }
        }
    }

    #[test]
    fn exact_tail_quantile_needs_more_data() {
        // With n = 20 a two-sided 95% CI for p99 cannot exist.
        let n99 = min_samples_for_quantile_ci(0.99, 0.95).unwrap();
        let n50 = min_samples_for_quantile_ci(0.5, 0.95).unwrap();
        assert!(n99 > 250, "p99 needs hundreds of samples, got {n99}");
        assert!(n50 <= 10, "median needs few samples, got {n50}");
    }

    #[test]
    fn min_samples_median_95_is_six() {
        // 1 - 2 * 0.5^n >= 0.95 first holds at n = 6 (coverage 0.96875).
        assert_eq!(min_samples_for_quantile_ci(0.5, 0.95).unwrap(), 6);
    }

    #[test]
    fn ranks_widen_with_confidence() {
        let data: Vec<f64> = (1..=200).map(f64::from).collect();
        let c90 = median_ci_exact(&data, 0.90).unwrap();
        let c99 = median_ci_exact(&data, 0.99).unwrap();
        assert!(c99.lower_rank <= c90.lower_rank);
        assert!(c99.upper_rank >= c90.upper_rank);
        assert!(c99.ci.width() >= c90.ci.width());
    }

    #[test]
    fn auto_switches_methods_at_one_thousand() {
        let small: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(
            median_ci_auto(&small, 0.95).unwrap(),
            median_ci_exact(&small, 0.95).unwrap()
        );
        let large: Vec<f64> = (1..=5000).map(f64::from).collect();
        assert_eq!(
            median_ci_auto(&large, 0.95).unwrap(),
            median_ci_approx(&large, 0.95).unwrap()
        );
    }

    #[test]
    fn small_samples_are_rejected() {
        assert!(median_ci_exact(&[1.0, 2.0], 0.95).is_err());
        assert!(median_ci_approx(&[1.0], 0.95).is_err());
    }

    #[test]
    fn works_on_unsorted_input() {
        let data = [5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 7.0, 8.0, 6.0, 10.0];
        let r = median_ci_exact(&data, 0.95).unwrap();
        assert!(r.ci.lower <= r.ci.estimate && r.ci.estimate <= r.ci.upper);
        assert!(r.ci.lower >= 1.0 && r.ci.upper <= 10.0);
    }

    #[test]
    fn exact_coverage_is_empirically_correct() {
        // Draw many samples from a known distribution and count how often
        // the exact CI covers the true median. Uses a deterministic LCG.
        let mut state = 42u64;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let true_median = 1.0f64; // Exponential(1) has median ln 2 / lambda; use uniform instead.
        let _ = true_median;
        let mut hits = 0;
        let trials = 300;
        for _ in 0..trials {
            // Uniform(0, 2): true median = 1.
            let data: Vec<f64> = (0..25).map(|_| uniform() * 2.0).collect();
            let r = quantile_ci_exact(&data, 0.5, 0.95).unwrap();
            if r.ci.contains(1.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage >= 0.92, "coverage {coverage} below nominal");
    }

    #[test]
    fn prediction_interval_covers_future_draws() {
        // Empirical: build the interval from n draws, then check the
        // fraction of fresh draws it contains.
        let mut state = 77u64;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let train: Vec<f64> = (0..200).map(|_| uniform()).collect();
        let pi = prediction_interval(&train, 0.90).unwrap();
        let hits = (0..2000)
            .filter(|_| {
                let x = uniform();
                pi.contains(x)
            })
            .count();
        let coverage = hits as f64 / 2000.0;
        assert!((0.85..0.96).contains(&coverage), "coverage {coverage}");
    }

    #[test]
    fn prediction_interval_is_wider_than_median_ci() {
        let data: Vec<f64> = (1..=200).map(f64::from).collect();
        let pi = prediction_interval(&data, 0.95).unwrap();
        let ci = median_ci_exact(&data, 0.95).unwrap();
        assert!(pi.width() > ci.ci.width());
    }

    #[test]
    fn prediction_interval_needs_enough_data() {
        let small: Vec<f64> = (1..=10).map(f64::from).collect();
        assert!(prediction_interval(&small, 0.95).is_err());
        assert!(prediction_interval(&small, 0.80).is_ok());
    }

    #[test]
    fn p95_ci_upper_rank_near_tail() {
        let data: Vec<f64> = (1..=1000).map(f64::from).collect();
        let r = quantile_ci_exact(&data, 0.95, 0.95).unwrap();
        assert!(r.lower_rank > 900 && r.upper_rank <= 1000);
        assert!(r.ci.contains(r.ci.estimate));
    }
}
