//! Rank-based hypothesis tests.
//!
//! Distribution-free companions to the CI machinery: the Wilcoxon
//! signed-rank test (is the median equal to a hypothesized value / did a
//! paired change help?) and the Kruskal–Wallis test (do `k` groups —
//! machines, types, configurations — share a distribution?).

use crate::error::{check_finite, invalid, Result, StatsError};
use crate::normality::TestResult;
use crate::special::{chi_squared_cdf, normal_cdf};

/// Ranks `values` ascending with mid-ranks for ties; returns the ranks
/// and the tie-correction term `sum(t^3 - t)` over tie groups.
fn rank_with_ties(values: &[f64]) -> (Vec<f64>, f64) {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    let mut ranks = vec![0.0; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    (ranks, tie_term)
}

/// One-sample Wilcoxon signed-rank test of `H0: median == m0`
/// (two-sided, normal approximation with tie and continuity corrections).
///
/// The statistic reported is `W+`, the sum of ranks of positive
/// deviations.
///
/// # Errors
///
/// Returns an error on invalid input or fewer than 10 nonzero deviations
/// (the normal approximation needs them).
///
/// # Examples
///
/// ```
/// use varstats::ranktests::wilcoxon_signed_rank;
///
/// let data: Vec<f64> = (1..=30).map(f64::from).collect();
/// // The true median is 15.5; testing against 3 must reject.
/// let r = wilcoxon_signed_rank(&data, 3.0).unwrap();
/// assert!(r.p_value < 0.001);
/// ```
pub fn wilcoxon_signed_rank(data: &[f64], m0: f64) -> Result<TestResult> {
    check_finite(data)?;
    if !m0.is_finite() {
        return Err(invalid("m0", "must be finite"));
    }
    let deviations: Vec<f64> = data.iter().map(|&x| x - m0).filter(|&d| d != 0.0).collect();
    let n = deviations.len();
    if n < 10 {
        return Err(StatsError::TooFewSamples { needed: 10, got: n });
    }
    let abs: Vec<f64> = deviations.iter().map(|d| d.abs()).collect();
    let (ranks, tie_term) = rank_with_ties(&abs);
    let w_plus: f64 = deviations
        .iter()
        .zip(ranks.iter())
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| *r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if var <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let diff = w_plus - mean;
    let corrected = if diff > 0.5 {
        diff - 0.5
    } else if diff < -0.5 {
        diff + 0.5
    } else {
        0.0
    };
    let z = corrected / var.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(TestResult {
        statistic: w_plus,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Paired Wilcoxon signed-rank test: `H0: median(after - before) == 0`.
///
/// # Errors
///
/// Returns an error on invalid input, mismatched lengths, or too few
/// nonzero differences.
pub fn wilcoxon_paired(before: &[f64], after: &[f64]) -> Result<TestResult> {
    check_finite(before)?;
    check_finite(after)?;
    if before.len() != after.len() {
        return Err(invalid(
            "after",
            format!("length mismatch: {} vs {}", before.len(), after.len()),
        ));
    }
    let diffs: Vec<f64> = before.iter().zip(after).map(|(b, a)| a - b).collect();
    wilcoxon_signed_rank(&diffs, 0.0)
}

/// Kruskal–Wallis H test: do `k >= 2` groups share one distribution?
///
/// Ranks the pooled sample (mid-ranks for ties), computes
/// `H = 12 / (N (N+1)) * sum R_j^2 / n_j - 3 (N + 1)` with the tie
/// correction, and reports a chi-squared(k−1) p-value.
///
/// # Errors
///
/// Returns an error with fewer than 2 groups, any group smaller than 5,
/// invalid values, or all-identical data.
///
/// # Examples
///
/// ```
/// use varstats::ranktests::kruskal_wallis;
///
/// let g1: Vec<f64> = (0..20).map(|i| 10.0 + (i % 5) as f64).collect();
/// let g2: Vec<f64> = (0..20).map(|i| 30.0 + (i % 5) as f64).collect();
/// let r = kruskal_wallis(&[&g1, &g2]).unwrap();
/// assert!(r.p_value < 0.001);
/// ```
pub fn kruskal_wallis(groups: &[&[f64]]) -> Result<TestResult> {
    if groups.len() < 2 {
        return Err(invalid("groups", "need at least 2 groups"));
    }
    for g in groups {
        check_finite(g)?;
        if g.len() < 5 {
            return Err(StatsError::TooFewSamples {
                needed: 5,
                got: g.len(),
            });
        }
    }
    let pooled: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let n_total = pooled.len() as f64;
    let (ranks, tie_term) = rank_with_ties(&pooled);
    let tie_correction = 1.0 - tie_term / (n_total * n_total * n_total - n_total);
    if tie_correction <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let mut h = 0.0;
    let mut offset = 0usize;
    for g in groups {
        let r_sum: f64 = ranks[offset..offset + g.len()].iter().sum();
        h += r_sum * r_sum / g.len() as f64;
        offset += g.len();
    }
    h = 12.0 / (n_total * (n_total + 1.0)) * h - 3.0 * (n_total + 1.0);
    h /= tie_correction;
    let df = (groups.len() - 1) as f64;
    let p = 1.0 - chi_squared_cdf(h.max(0.0), df)?;
    Ok(TestResult {
        statistic: h,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn signed_rank_accepts_true_median() {
        let mut u = splitmix(1);
        let data: Vec<f64> = (0..50).map(|_| 100.0 + (u() - 0.5)).collect();
        let r = wilcoxon_signed_rank(&data, 100.0).unwrap();
        assert!(r.p_value > 0.05, "p={}", r.p_value);
    }

    #[test]
    fn signed_rank_rejects_wrong_median() {
        let mut u = splitmix(2);
        let data: Vec<f64> = (0..50).map(|_| 100.0 + (u() - 0.5)).collect();
        let r = wilcoxon_signed_rank(&data, 101.0).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn signed_rank_statistic_extremes() {
        // All deviations positive: W+ = n(n+1)/2.
        let data: Vec<f64> = (1..=15).map(f64::from).collect();
        let r = wilcoxon_signed_rank(&data, 0.0).unwrap();
        assert_eq!(r.statistic, 120.0);
    }

    #[test]
    fn paired_test_detects_shift() {
        let mut u = splitmix(3);
        let before: Vec<f64> = (0..40).map(|_| 10.0 + u()).collect();
        let after: Vec<f64> = before.iter().map(|b| b * 1.05 + 0.01).collect();
        let r = wilcoxon_paired(&before, &after).unwrap();
        assert!(r.p_value < 1e-6);
        // No-change control.
        let mut u2 = splitmix(4);
        let jitter: Vec<f64> = before.iter().map(|b| b + (u2() - 0.5) * 0.1).collect();
        let r = wilcoxon_paired(&before, &jitter).unwrap();
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn kruskal_identical_groups_accept() {
        let mut u = splitmix(5);
        let groups: Vec<Vec<f64>> = (0..3).map(|_| (0..30).map(|_| u()).collect()).collect();
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        let r = kruskal_wallis(&refs).unwrap();
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn kruskal_shifted_group_rejects() {
        let mut u = splitmix(6);
        let g1: Vec<f64> = (0..30).map(|_| u()).collect();
        let g2: Vec<f64> = (0..30).map(|_| u()).collect();
        let g3: Vec<f64> = (0..30).map(|_| u() + 0.8).collect();
        let r = kruskal_wallis(&[&g1, &g2, &g3]).unwrap();
        assert!(r.p_value < 0.001, "p={}", r.p_value);
        assert!(r.statistic > 10.0);
    }

    #[test]
    fn kruskal_handles_ties() {
        let g1 = [1.0, 1.0, 2.0, 2.0, 3.0];
        let g2 = [2.0, 2.0, 3.0, 3.0, 4.0];
        let r = kruskal_wallis(&[&g1, &g2]).unwrap();
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn validation() {
        assert!(wilcoxon_signed_rank(&[1.0; 5], 1.0).is_err()); // all zero deviations
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], 0.0).is_err());
        assert!(wilcoxon_signed_rank(&[1.0; 20], f64::NAN).is_err());
        assert!(wilcoxon_paired(&[1.0, 2.0], &[1.0]).is_err());
        let g: Vec<f64> = (0..10).map(f64::from).collect();
        assert!(kruskal_wallis(&[&g]).is_err());
        assert!(kruskal_wallis(&[&g, &[1.0, 2.0]]).is_err());
        let same = [5.0; 10];
        assert!(kruskal_wallis(&[&same, &same]).is_err());
    }
}
