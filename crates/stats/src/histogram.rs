//! Fixed-bin histograms with automatic bin-width selection.
//!
//! Used by the figure pipelines to render frequency charts (the paper's
//! skewed/multimodal distribution exhibits) and to eyeball modality.

use serde::{Deserialize, Serialize};

use crate::error::{check_finite, invalid, Result};
use crate::quantile::{quantile, QuantileMethod};

/// How many bins a histogram should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinRule {
    /// Fixed number of bins.
    Fixed(usize),
    /// Sturges' rule: `ceil(log2 n) + 1`.
    Sturges,
    /// Freedman–Diaconis: width `2 * IQR / n^(1/3)` — robust to outliers.
    #[default]
    FreedmanDiaconis,
}

/// A histogram over `[min, max]` with equal-width bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Right edge of the last bin.
    pub max: f64,
    /// Width of each bin.
    pub bin_width: f64,
    /// Counts per bin.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub n: usize,
}

impl Histogram {
    /// Builds a histogram from data using `rule` to pick the bin count.
    ///
    /// # Errors
    ///
    /// Returns an error on empty/non-finite input or a zero bin count.
    pub fn new(data: &[f64], rule: BinRule) -> Result<Self> {
        check_finite(data)?;
        let n = data.len();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let bins = match rule {
            BinRule::Fixed(b) => {
                if b == 0 {
                    return Err(invalid("bins", "must be at least 1"));
                }
                b
            }
            BinRule::Sturges => ((n as f64).log2().ceil() as usize + 1).max(1),
            BinRule::FreedmanDiaconis => {
                let q1 = quantile(data, 0.25, QuantileMethod::Linear)?;
                let q3 = quantile(data, 0.75, QuantileMethod::Linear)?;
                let iqr = q3 - q1;
                if iqr <= 0.0 || max == min {
                    ((n as f64).log2().ceil() as usize + 1).max(1)
                } else {
                    let width = 2.0 * iqr / (n as f64).cbrt();
                    (((max - min) / width).ceil() as usize).clamp(1, 10_000)
                }
            }
        };
        let span = if max > min { max - min } else { 1.0 };
        let bin_width = span / bins as f64;
        let mut counts = vec![0u64; bins];
        for &x in data {
            let idx = (((x - min) / bin_width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Ok(Self {
            min,
            max,
            bin_width,
            counts,
            n,
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Left edge of bin `i`.
    pub fn bin_left(&self, i: usize) -> f64 {
        self.min + i as f64 * self.bin_width
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.bin_left(i) + self.bin_width / 2.0
    }

    /// Fraction of samples in bin `i`.
    pub fn frequency(&self, i: usize) -> f64 {
        self.counts[i] as f64 / self.n as f64
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Counts the local maxima of the (lightly smoothed) bin counts —
    /// a cheap modality detector used by the multimodality experiments.
    ///
    /// A bin is a mode if its smoothed count exceeds both neighbors and is
    /// at least `min_fraction` of the total sample count.
    pub fn count_modes(&self, min_fraction: f64) -> usize {
        let b = self.counts.len();
        if b == 1 {
            return 1;
        }
        // Three-point moving average smoothing.
        let smooth: Vec<f64> = (0..b)
            .map(|i| {
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(b - 1);
                let mut s = 0.0;
                let mut k = 0.0;
                for j in lo..=hi {
                    s += self.counts[j] as f64;
                    k += 1.0;
                }
                s / k
            })
            .collect();
        let threshold = min_fraction * self.n as f64;
        let mut modes = 0;
        for i in 0..b {
            let left = if i == 0 { -1.0 } else { smooth[i - 1] };
            let right = if i == b - 1 { -1.0 } else { smooth[i + 1] };
            if smooth[i] > left && smooth[i] > right && smooth[i] >= threshold {
                modes += 1;
            }
        }
        modes.max(1)
    }

    /// Merges two histograms onto a common equal-width grid spanning both
    /// ranges, with `max(self.bins(), other.bins())` bins.
    ///
    /// Each source bin's count lands in the destination bin containing the
    /// source bin's center, so the merge is lossy by at most one source bin
    /// width per sample. Counts and `n` are preserved exactly; `min`/`max`
    /// widen to cover both inputs. The operation is deterministic in its
    /// argument order (A ⊕ B is not bit-identical to B ⊕ A when the grids
    /// differ), so streaming folds must merge in a canonical order — the
    /// data path uses ascending machine-id order (DESIGN.md §11).
    pub fn merge(&self, other: &Histogram) -> Histogram {
        let min = self.min.min(other.min);
        let max = self.max.max(other.max);
        let bins = self.bins().max(other.bins()).max(1);
        let span = if max > min { max - min } else { 1.0 };
        let bin_width = span / bins as f64;
        let mut counts = vec![0u64; bins];
        for h in [self, other] {
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let center = h.bin_center(i).clamp(min, max);
                let idx = (((center - min) / bin_width) as usize).min(bins - 1);
                counts[idx] += c;
            }
        }
        Histogram {
            min,
            max,
            bin_width,
            counts,
            n: self.n + other.n,
        }
    }

    /// Approximates the `q`-quantile (`0.0..=1.0`) from the bin counts by
    /// linear interpolation inside the bin where the cumulative count
    /// crosses `q * n`. Error is bounded by one bin width.
    ///
    /// # Errors
    ///
    /// Returns an error if the histogram is empty or `q` is not in `[0, 1]`.
    pub fn approx_quantile(&self, q: f64) -> Result<f64> {
        if self.n == 0 {
            return Err(invalid(
                "histogram",
                "cannot take a quantile of zero samples",
            ));
        }
        if !(0.0..=1.0).contains(&q) {
            return Err(invalid("q", "must be within [0, 1]"));
        }
        if q == 0.0 {
            return Ok(self.min);
        }
        if q == 1.0 {
            return Ok(self.max);
        }
        let target = q * self.n as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = (target - cum) / c as f64;
                let v = self.bin_left(i) + frac * self.bin_width;
                return Ok(v.clamp(self.min, self.max));
            }
            cum = next;
        }
        Ok(self.max)
    }

    /// Renders a compact ASCII sketch (one row per bin), for terminal
    /// artifacts.
    pub fn ascii(&self, width: usize) -> String {
        let max_count = *self.counts.iter().max().unwrap_or(&1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = if max_count == 0 {
                0
            } else {
                (c as usize * width) / max_count as usize
            };
            out.push_str(&format!(
                "{:>12.4} | {} {}\n",
                self.bin_left(i),
                "#".repeat(bar_len),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_n() {
        let data: Vec<f64> = (0..250).map(|i| (i as f64 * 1.37).sin() * 10.0).collect();
        for rule in [
            BinRule::Fixed(7),
            BinRule::Sturges,
            BinRule::FreedmanDiaconis,
        ] {
            let h = Histogram::new(&data, rule).unwrap();
            assert_eq!(h.counts.iter().sum::<u64>() as usize, data.len());
            assert_eq!(h.n, data.len());
        }
    }

    #[test]
    fn fixed_bins_place_values_correctly() {
        let data = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5];
        let h = Histogram::new(&data, BinRule::Fixed(4)).unwrap();
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert!((h.bin_width - 0.875).abs() < 1e-12);
        assert_eq!(h.bin_left(0), 0.0);
        assert!((h.bin_center(0) - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let data = [0.0, 10.0];
        let h = Histogram::new(&data, BinRule::Fixed(5)).unwrap();
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn constant_data_is_handled() {
        let data = [3.0; 50];
        let h = Histogram::new(&data, BinRule::FreedmanDiaconis).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 50);
    }

    #[test]
    fn sturges_bin_count() {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let h = Histogram::new(&data, BinRule::Sturges).unwrap();
        assert_eq!(h.bins(), 7); // ceil(log2 64) + 1.
    }

    #[test]
    fn unimodal_vs_bimodal_mode_count() {
        // Tight unimodal cluster.
        let unimodal: Vec<f64> = (0..200).map(|i| 10.0 + ((i % 20) as f64) * 0.01).collect();
        let h = Histogram::new(&unimodal, BinRule::Fixed(20)).unwrap();
        assert_eq!(h.count_modes(0.05), 1);

        // Two well-separated clusters.
        let mut bimodal = Vec::new();
        for i in 0..100 {
            bimodal.push(10.0 + (i % 10) as f64 * 0.05);
            bimodal.push(30.0 + (i % 10) as f64 * 0.05);
        }
        let h = Histogram::new(&bimodal, BinRule::Fixed(20)).unwrap();
        assert_eq!(h.count_modes(0.05), 2);
    }

    #[test]
    fn frequency_and_mode_bin() {
        let data = [1.0, 1.0, 1.0, 5.0];
        let h = Histogram::new(&data, BinRule::Fixed(2)).unwrap();
        assert_eq!(h.mode_bin(), 0);
        assert!((h.frequency(0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_contains_counts() {
        let data = [1.0, 2.0, 2.0, 3.0];
        let h = Histogram::new(&data, BinRule::Fixed(3)).unwrap();
        let s = h.ascii(20);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    fn merge_preserves_counts_and_widens_range() {
        let a = Histogram::new(&[0.0, 1.0, 2.0, 3.0], BinRule::Fixed(4)).unwrap();
        let b = Histogram::new(&[10.0, 11.0, 12.0], BinRule::Fixed(2)).unwrap();
        let m = a.merge(&b);
        assert_eq!(m.n, 7);
        assert_eq!(m.counts.iter().sum::<u64>(), 7);
        assert_eq!(m.min, 0.0);
        assert_eq!(m.max, 12.0);
        assert_eq!(m.bins(), 4);
    }

    #[test]
    fn merge_is_deterministic_for_fixed_order() {
        let a = Histogram::new(&[0.0, 1.0, 5.0], BinRule::Fixed(3)).unwrap();
        let b = Histogram::new(&[2.0, 9.0], BinRule::Fixed(5)).unwrap();
        assert_eq!(a.merge(&b), a.merge(&b));
    }

    #[test]
    fn merged_quantiles_stay_within_a_bin_width() {
        let left: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let right: Vec<f64> = (100..200).map(|i| i as f64).collect();
        let all: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let merged = Histogram::new(&left, BinRule::Fixed(50))
            .unwrap()
            .merge(&Histogram::new(&right, BinRule::Fixed(50)).unwrap());
        let exact = Histogram::new(&all, BinRule::Fixed(50)).unwrap();
        for q in [0.1, 0.5, 0.9, 0.95] {
            let got = merged.approx_quantile(q).unwrap();
            let want = exact.approx_quantile(q).unwrap();
            assert!(
                (got - want).abs() <= merged.bin_width + exact.bin_width,
                "q={q}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn approx_quantile_endpoints_and_median() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::new(&data, BinRule::Fixed(100)).unwrap();
        assert_eq!(h.approx_quantile(0.0).unwrap(), 0.0);
        assert_eq!(h.approx_quantile(1.0).unwrap(), 999.0);
        let med = h.approx_quantile(0.5).unwrap();
        assert!((med - 499.5).abs() <= h.bin_width, "median {med}");
    }

    #[test]
    fn approx_quantile_rejects_bad_input() {
        let h = Histogram::new(&[1.0, 2.0], BinRule::Fixed(2)).unwrap();
        assert!(h.approx_quantile(-0.1).is_err());
        assert!(h.approx_quantile(1.1).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Histogram::new(&[], BinRule::Sturges).is_err());
        assert!(Histogram::new(&[1.0, f64::NAN], BinRule::Sturges).is_err());
        assert!(Histogram::new(&[1.0], BinRule::Fixed(0)).is_err());
    }
}
